"""Synthetic probabilistic circuits (sum-product networks).

The paper benchmarks PCs learned from density-estimation datasets
(tretail, mnist, nltcs, msnbc, msweb, bnetflix, and the "large PC"
Bayesian-network circuits pigs/andes/munin/mildew).  The learned
circuit files are not redistributable here, so we generate synthetic
circuits that match the *structural* statistics the compiler actually
sees: node count, depth, average parallelism n/l (Table I), alternating
sum/product structure, fan-in around 2, and irregular fan-out.

Generation model
----------------
A PC over ``num_vars`` boolean variables is grown bottom-up in layers:

* Layer 0: two leaf inputs per variable (the indicator/weight pairs).
* Odd layers: *product* nodes combining 2..max_fan_in children chosen
  from the previous layer(s) with a locality bias (children are sampled
  around a random center, mimicking the variable-decomposition locality
  of learned PSDDs while retaining irregular connectivity).
* Even layers: *sum* nodes, same sampling (weights appear as extra leaf
  inputs feeding a product below the sum, as in PSDDs; we fold them
  into leaves).
* A final sum node forms the single root.

The ``skip_connection_prob`` lets nodes draw children from any earlier
layer, producing long-range irregular edges — the feature that defeats
caches/SIMD and motivates the paper.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass

from ..errors import WorkloadError
from ..graphs import DAG, DAGBuilder, OpType


@dataclass(frozen=True)
class PCParams:
    """Generation parameters for a synthetic probabilistic circuit.

    Attributes:
        num_vars: Number of model variables (sets the leaf count).
        target_nodes: Approximate total node count to grow to.
        depth: Approximate number of alternating sum/product layers.
        max_fan_in: Maximum children per internal node.
        skip_connection_prob: Probability a child comes from a layer
            older than the immediately preceding one.
        locality: Width (as fraction of previous-layer size) of the
            window children are sampled from; smaller = more local.
        seed: RNG seed (generation is deterministic given the seed).
    """

    num_vars: int = 16
    target_nodes: int = 1000
    depth: int = 20
    max_fan_in: int = 4
    skip_connection_prob: float = 0.15
    locality: float = 0.25
    seed: int = 0

    def validate(self) -> None:
        if self.num_vars < 1:
            raise WorkloadError("num_vars must be >= 1")
        if self.target_nodes < 4 * self.num_vars:
            raise WorkloadError(
                "target_nodes too small: need at least "
                f"{4 * self.num_vars} for {self.num_vars} variables"
            )
        if self.depth < 2:
            raise WorkloadError("depth must be >= 2")
        if self.max_fan_in < 2:
            raise WorkloadError("max_fan_in must be >= 2")
        if not 0.0 <= self.skip_connection_prob <= 1.0:
            raise WorkloadError("skip_connection_prob must be in [0, 1]")
        if not 0.0 < self.locality <= 1.0:
            raise WorkloadError("locality must be in (0, 1]")


def generate_pc(params: PCParams, name: str = "pc") -> DAG:
    """Generate a synthetic probabilistic circuit DAG.

    The result alternates ADD (sum) and MUL (product) layers, has one
    sink (the root), and every node reaches the root.

    Raises:
        WorkloadError: If the parameters are unsatisfiable.
    """
    params.validate()
    rng = random.Random(params.seed)
    builder = DAGBuilder()

    # Leaf layer: two indicators per variable.
    layers: list[list[int]] = []
    leaves = [builder.add_input() for _ in range(2 * params.num_vars)]
    layers.append(leaves)

    internal_budget = params.target_nodes - len(leaves) - 1  # -1 for root
    num_layers = max(params.depth - 1, 1)
    per_layer = max(internal_budget // num_layers, 1)

    consumed: set[int] = set()
    for layer_idx in range(1, num_layers + 1):
        op = OpType.MUL if layer_idx % 2 == 1 else OpType.ADD
        # Shrink upper layers so the circuit tapers towards the root,
        # like learned PCs do.
        taper = 1.0 - 0.5 * (layer_idx / num_layers)
        layer_size = max(int(per_layer * taper * 2 / 1.5), 1)
        layer_size = min(layer_size, internal_budget)
        if layer_size <= 0:
            break
        internal_budget -= layer_size
        new_layer: list[int] = []
        prev = layers[-1]
        # Learned PCs consume each layer's values promptly: cycle through
        # the yet-unconsumed previous-layer nodes first so values have
        # short, realistic lifetimes instead of dangling to the root.
        # Kept in positional order so the pops stay band-aligned.
        unconsumed = deque(n for n in prev if n not in consumed)
        for node_idx in range(layer_size):
            # Band-diagonal alignment: node i of this layer draws from
            # the corresponding region of the previous layer, mimicking
            # the vtree locality of learned PSDDs.  Without it every
            # value stays live for a whole layer and the circuit's cut
            # width (hence register pressure) becomes unrealistically
            # large.
            frac = node_idx / max(layer_size, 1)
            picks = set(
                _sample_children(rng, layers, prev, params, frac)
            )
            while unconsumed and len(picks) < params.max_fan_in:
                picks.add(unconsumed.popleft())
            while len(picks) < 2:  # tiny layers: top up from prev
                picks.add(prev[rng.randrange(len(prev))])
                if len(prev) < 2:
                    picks.add(layers[0][0])
            children = sorted(picks)
            node = builder.add_op(op, children)
            consumed.update(children)
            new_layer.append(node)
        layers.append(new_layer)
        if internal_budget <= 0:
            break

    _add_root(builder, layers, consumed, rng, params)
    return builder.build(name=name)


def _sample_children(
    rng: random.Random,
    layers: list[list[int]],
    prev: list[int],
    params: PCParams,
    position_frac: float,
) -> list[int]:
    """Sample a fan-in-k child set with locality + skip connections."""
    k = rng.randint(2, params.max_fan_in)
    children: set[int] = set()
    center = int(position_frac * len(prev)) % len(prev)
    window = max(int(len(prev) * params.locality), k)
    attempts = 0
    while len(children) < k and attempts < 20 * k:
        attempts += 1
        if len(layers) > 2 and rng.random() < params.skip_connection_prob:
            source_layer = layers[rng.randrange(len(layers) - 1)]
            children.add(source_layer[rng.randrange(len(source_layer))])
        else:
            offset = rng.randint(-window, window)
            children.add(prev[(center + offset) % len(prev)])
    while len(children) < 2:  # guarantee binary-compatible fan-in
        children.add(prev[rng.randrange(len(prev))])
    return sorted(children)


def _add_root(
    builder: DAGBuilder,
    layers: list[list[int]],
    consumed: set[int],
    rng: random.Random,
    params: PCParams,
) -> None:
    """Tie every unconsumed node into a single root sum.

    Learned PCs have a single root; the generator may leave orphans in
    intermediate layers, so they are folded in with a reduction tree of
    alternating ops to keep fan-in bounded.
    """
    orphans = [
        node
        for layer in layers  # leaves included: no dead inputs allowed
        for node in layer
        if node not in consumed
    ]
    if not orphans:
        orphans = [layers[-1][-1]]
    work = orphans
    toggle = True
    while len(work) > 1:
        op = OpType.ADD if toggle else OpType.MUL
        toggle = not toggle
        nxt: list[int] = []
        for i in range(0, len(work), params.max_fan_in):
            group = work[i : i + params.max_fan_in]
            if len(group) == 1:
                nxt.append(group[0])
            else:
                nxt.append(builder.add_op(op, group))
        work = nxt
    if builder.num_nodes == work[0] + 1 and len(orphans) == 1:
        # Root already exists but ensure the sink is a sum as in PCs.
        builder.add_op(OpType.ADD, [work[0], layers[0][0]])


def evaluate_pc(dag: DAG, leaf_values: list[float]) -> float:
    """Reference evaluation of a PC at its root (plain topological).

    Provided for workload-level sanity checks; the simulator-grade
    golden model lives in ``repro.sim.reference``.
    """
    from ..graphs.traversal import topological_order

    values: list[float] = [0.0] * dag.num_nodes
    for node in topological_order(dag):
        op = dag.op(node)
        if op is OpType.INPUT:
            values[node] = leaf_values[dag.input_slot(node)]
        elif op is OpType.ADD:
            values[node] = math.fsum(values[p] for p in dag.predecessors(node))
        else:
            prod = 1.0
            for p in dag.predecessors(node):
                prod *= values[p]
            values[node] = prod
    sinks = dag.sinks()
    return values[sinks[0]] if len(sinks) == 1 else max(values[s] for s in sinks)


def random_leaf_probabilities(dag: DAG, seed: int = 0) -> list[float]:
    """Random leaf inputs in (0, 1], suitable as PC indicator weights."""
    rng = random.Random(seed)
    return [rng.uniform(0.05, 1.0) for _ in range(dag.num_inputs)]
