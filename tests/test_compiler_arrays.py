"""DagArrays invariants: the array view must agree with the
dict/tuple traversals it replaced, on arbitrary synthetic DAGs.

The compiler kernels trust these arrays blindly (no per-node
validation on the hot path), so this is where the contract is
enforced: CSR adjacency mirrors ``predecessors``/``successors`` in
order, the memoized topological order is the classic FIFO Kahn order,
levels are ASAP levels, and the capped-height kernel matches the
reference per-node sweep.
"""

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.arrays import OP_CODES, DagArrays
from repro.graphs import OpType, dfs_order
from repro.graphs.traversal import (
    node_levels,
    node_levels_array,
    topological_order,
    topological_order_array,
)
from repro.workloads.synth import SYNTH_FAMILIES, generate_synth

FAMILIES = sorted(SYNTH_FAMILIES)


@st.composite
def synth_dags(draw):
    family = draw(st.sampled_from(FAMILIES))
    n = draw(st.integers(min_value=3, max_value=160))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return generate_synth(family, n, seed=seed)


def reference_kahn(dag):
    """The pre-arrays implementation, verbatim."""
    indegree = [dag.in_degree(n) for n in dag.nodes()]
    ready = deque(n for n in dag.nodes() if indegree[n] == 0)
    order = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for succ in dag.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return order


def reference_levels(dag):
    levels = [0] * dag.num_nodes
    for node in reference_kahn(dag):
        preds = dag.predecessors(node)
        if preds:
            levels[node] = 1 + max(levels[p] for p in preds)
    return levels


def reference_capped_heights(dag, cap):
    overflow = cap + 1
    height = [0] * dag.num_nodes
    for node in reference_kahn(dag):
        if dag.op(node) is OpType.INPUT:
            continue
        worst = max(height[p] for p in dag.predecessors(node))
        height[node] = min(worst + 1, overflow)
    return height


class TestCsrAdjacency:
    @settings(max_examples=60, deadline=None)
    @given(synth_dags())
    def test_pred_csr_matches_predecessors(self, dag):
        indptr, indices = dag.pred_csr()
        assert indptr[0] == 0 and indptr[-1] == dag.num_edges
        for v in dag.nodes():
            row = tuple(indices[indptr[v] : indptr[v + 1]].tolist())
            assert row == dag.predecessors(v)

    @settings(max_examples=60, deadline=None)
    @given(synth_dags())
    def test_succ_csr_matches_successors(self, dag):
        indptr, indices = dag.succ_csr()
        for v in dag.nodes():
            row = tuple(indices[indptr[v] : indptr[v + 1]].tolist())
            assert row == dag.successors(v)

    def test_csr_cached_per_dag(self):
        dag = generate_synth("layered", 50, seed=1)
        a = dag.pred_csr()
        b = dag.pred_csr()
        assert a[0] is b[0] and a[1] is b[1]

    def test_csr_rebuilt_after_pickle(self):
        import pickle

        dag = generate_synth("diamond", 40, seed=2)
        dag.pred_csr()
        clone = pickle.loads(pickle.dumps(dag))
        indptr, indices = clone.pred_csr()
        np.testing.assert_array_equal(indptr, dag.pred_csr()[0])
        np.testing.assert_array_equal(indices, dag.pred_csr()[1])


class TestMemoizedTraversal:
    @settings(max_examples=60, deadline=None)
    @given(synth_dags())
    def test_topological_order_is_fifo_kahn(self, dag):
        assert topological_order(dag) == reference_kahn(dag)

    @settings(max_examples=60, deadline=None)
    @given(synth_dags())
    def test_levels_are_asap_levels(self, dag):
        assert node_levels(dag) == reference_levels(dag)

    def test_arrays_are_memoized_and_shared(self):
        dag = generate_synth("reuse", 80, seed=3)
        assert topological_order_array(dag) is topological_order_array(dag)
        assert node_levels_array(dag) is node_levels_array(dag)

    def test_lists_are_fresh_copies(self):
        dag = generate_synth("wide", 30, seed=4)
        first = topological_order(dag)
        first.reverse()  # caller may mutate its copy
        assert topological_order(dag) == reference_kahn(dag)


class TestDagArrays:
    @settings(max_examples=60, deadline=None)
    @given(synth_dags())
    def test_ops_and_degrees(self, dag):
        arrays = DagArrays.of(dag)
        assert arrays.n == dag.num_nodes
        for v in dag.nodes():
            assert arrays.ops[v] == OP_CODES[dag.op(v)]
            assert bool(arrays.is_input[v]) == (dag.op(v) is OpType.INPUT)
            assert arrays.in_degree[v] == dag.in_degree(v)
            assert arrays.out_degree[v] == dag.out_degree(v)

    @settings(max_examples=60, deadline=None)
    @given(synth_dags())
    def test_topo_and_levels_views(self, dag):
        arrays = DagArrays.of(dag)
        assert arrays.topo.tolist() == reference_kahn(dag)
        assert arrays.levels.tolist() == reference_levels(dag)

    @settings(max_examples=60, deadline=None)
    @given(synth_dags())
    def test_dfs_pos_matches_dfs_order(self, dag):
        arrays = DagArrays.of(dag)
        assert arrays.dfs_pos.tolist() == dfs_order(dag)

    @settings(max_examples=40, deadline=None)
    @given(synth_dags(), st.integers(min_value=1, max_value=5))
    def test_capped_heights_match_reference(self, dag, cap):
        arrays = DagArrays.of(dag)
        got = arrays.capped_heights(cap).tolist()
        assert got == reference_capped_heights(dag, cap)

    def test_memoized_instance(self):
        dag = generate_synth("near_chain", 60, seed=5)
        assert DagArrays.of(dag) is DagArrays.of(dag)

    def test_memo_does_not_pin_dags(self):
        """The memo must not leak: dropping the DAG frees its entry
        (a strong dag field inside the value would close a ref cycle
        through the weak key and pin every compiled DAG forever)."""
        import gc

        from repro.compiler.arrays import _MEMO

        before = len(_MEMO)
        for seed in range(5):
            DagArrays.of(generate_synth("layered", 80, seed=seed))
        gc.collect()
        assert len(_MEMO) <= before

    def test_level_slices_partition_topo_order(self):
        dag = generate_synth("layered", 120, seed=6)
        arrays = DagArrays.of(dag)
        slices = arrays.level_slices()
        flat = [v for group in slices for v in group.tolist()]
        assert flat == arrays.topo.tolist()
        for level, group in enumerate(slices):
            assert all(arrays.levels[v] == level for v in group.tolist())

    def test_empty_like_minimum_dag(self):
        dag = generate_synth("deep", 3, seed=0)
        arrays = DagArrays.of(dag)
        assert arrays.n == 3
        assert arrays.capped_heights(2).tolist()[-1] >= 1


class TestMapperPathEquivalence:
    """The bank mapper's numpy counting-index kernel and the
    historical bucket-of-sets path must replay the identical random
    choice sequence — including the conflict (least-contended) and
    constraint-H repair fallbacks — whichever side of
    ``_ARRAY_KERNEL_MIN_VARS`` a DAG lands on."""

    def _both_paths(self, dag, config, seed, monkeypatch):
        import repro.compiler.mapping as mapping_module
        from repro.arch import Interconnect
        from repro.compiler import decompose
        from repro.graphs import binarize

        decomp = decompose(binarize(dag).dag, config)
        ic = Interconnect(config)
        monkeypatch.setattr(mapping_module, "_ARRAY_KERNEL_MIN_VARS", 0)
        via_arrays = mapping_module.map_banks(decomp, ic, seed=seed)
        monkeypatch.setattr(
            mapping_module, "_ARRAY_KERNEL_MIN_VARS", 10**9
        )
        via_sets = mapping_module.map_banks(decomp, ic, seed=seed)
        return via_arrays, via_sets

    @pytest.mark.parametrize("family", ["layered", "reuse",
                                        "skewed_fanout", "diamond"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_identical_mappings(self, family, seed, monkeypatch):
        from repro.arch import ArchConfig

        dag = generate_synth(family, 900, seed=11)
        # Small bank count forces contention (conflict fallback).
        config = ArchConfig(depth=2, banks=8, regs_per_bank=32)
        a, b = self._both_paths(dag, config, seed, monkeypatch)
        assert a.bank_of == b.bank_of
        assert a.write_pe == b.write_pe
        assert a.predicted_read_conflicts == b.predicted_read_conflicts
        assert a.repairs == b.repairs

    def test_fallbacks_exercised(self, monkeypatch):
        """The parity claim must cover the s == 0 interleavings."""
        from repro.arch import ArchConfig

        dag = generate_synth("layered", 600, seed=3)
        config = ArchConfig(depth=1, banks=8, regs_per_bank=32)
        a, b = self._both_paths(dag, config, 5, monkeypatch)
        assert a.predicted_read_conflicts > 0  # conflict path taken
        assert a.bank_of == b.bank_of
        assert a.predicted_read_conflicts == b.predicted_read_conflicts


@pytest.mark.parametrize("family", FAMILIES)
def test_compile_still_bitwise_after_arrays(family):
    """End-to-end guard: array kernels change no compiled program.

    (The full equivalence net is the golden + differential suites;
    this is the quick per-family canary.)
    """
    from repro.arch import ArchConfig
    from repro.compiler import compile_dag
    from repro.graphs import binarize
    from repro.sim import evaluate_dag, run_program

    dag = generate_synth(family, 64, seed=9)
    config = ArchConfig(depth=2, banks=8, regs_per_bank=16)
    result = compile_dag(dag, config, validate_input=False)
    inputs = [1.0 + 0.01 * i for i in range(dag.num_inputs)]
    sim = run_program(result.program, inputs)
    golden = evaluate_dag(binarize(dag).dag, inputs)
    for sink in dag.sinks():
        if dag.op(sink) is OpType.INPUT:
            continue
        var = result.node_map[sink]
        assert sim.values[var] == golden[var]
