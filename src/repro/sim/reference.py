"""Golden model: plain topological DAG evaluation.

Everything the compiled program computes is checked against this —
it is the semantic definition of "executing a DAG" (§II).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..graphs import DAG, OpType, topological_order


def evaluate_dag(dag: DAG, inputs: list[float]) -> np.ndarray:
    """Evaluate every node; returns a value per node id.

    Args:
        inputs: External input vector, indexed by input slot.

    Raises:
        SimulationError: If the input vector has the wrong length.
    """
    if len(inputs) != dag.num_inputs:
        raise SimulationError(
            f"expected {dag.num_inputs} inputs, got {len(inputs)}"
        )
    values = np.zeros(dag.num_nodes, dtype=np.float64)
    # Deep product chains may overflow to inf — well-defined IEEE
    # behavior shared by every executor (the batch engine suppresses
    # the same warning), not something to spray warnings about.
    with np.errstate(over="ignore", invalid="ignore"):
        for node in topological_order(dag):
            op = dag.op(node)
            if op is OpType.INPUT:
                values[node] = inputs[dag.input_slot(node)]
            else:
                preds = dag.predecessors(node)
                if op is OpType.ADD:
                    acc = 0.0
                    for p in preds:
                        acc += values[p]
                else:
                    acc = 1.0
                    for p in preds:
                        acc *= values[p]
                values[node] = acc
    return values


def evaluate_outputs(dag: DAG, inputs: list[float]) -> dict[int, float]:
    """Values of the DAG sinks only."""
    values = evaluate_dag(dag, inputs)
    return {node: float(values[node]) for node in dag.sinks()}
