"""Durable work queue: leases, retries, quarantine, resume, merge.

The end-to-end tests run real worker processes against a campaign
directory; the unit tests drive :class:`DurableQueue` file operations
directly.  The hypothesis test at the bottom is the determinism
contract: *any* interleaving of completions, retries and duplicate
completions merges to byte-identical output.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path

import pytest

from repro.runner.queue import (
    CampaignError,
    ChaosSpec,
    DurableQueue,
    backoff_delay,
    campaign_dir,
    campaign_status,
    create_campaign,
    list_campaigns,
    merge_campaign,
    run_campaign,
)


# -- module-level task bodies (workers re-import them by name) --------
def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"poison task {x}")


def _flaky(item) -> int:
    """Fails the first ``fails`` attempts, then succeeds — the retry
    path's happy ending.  Attempt state lives in a side file."""
    path, fails, x = item
    counter = Path(path)
    n = int(counter.read_text()) if counter.exists() else 0
    counter.write_text(str(n + 1))
    if n < fails:
        raise ValueError(f"transient failure #{n}")
    return x * 10


class TestCampaignRoot:
    def test_configured_cache_moves_the_campaign_root(self, tmp_path):
        """configure_cache() must relocate campaigns too — library
        users who point the cache at a scratch dir would otherwise
        leak campaign state into the stock ~/.cache location (and
        collide with it on the next run)."""
        from repro.runner import cache as runner_cache
        from repro.runner.queue import campaign_root

        runner_cache.configure_cache(tmp_path / "elsewhere")
        try:
            assert campaign_root() == tmp_path / "elsewhere" / "campaigns"
            assert campaign_root(tmp_path / "explicit") == (
                tmp_path / "explicit"
            )
        finally:
            runner_cache._default_cache = None  # back to env resolution


class TestBackoffDelay:
    def test_deterministic(self):
        a = backoff_delay("camp", 3, 2)
        b = backoff_delay("camp", 3, 2)
        assert a == b

    def test_jitter_decorrelates_tasks_and_attempts(self):
        delays = {
            backoff_delay("camp", task, attempt)
            for task in range(4)
            for attempt in (1, 2)
        }
        assert len(delays) == 8

    def test_exponential_growth_within_jitter_band(self):
        for attempt in range(1, 6):
            raw = min(30.0, 0.25 * 2 ** (attempt - 1))
            d = backoff_delay("c", 0, attempt)
            assert 0.5 * raw <= d <= raw

    def test_cap(self):
        assert backoff_delay("c", 0, 50, base_s=1.0, cap_s=5.0) <= 5.0


class TestChaosSpec:
    def test_json_round_trip(self):
        spec = ChaosSpec(
            kill=(1, 2), stall=(3,), poison=(0,), torn_ledger=(4,),
            torn_lease=(5,), stall_s=12.0,
        )
        assert ChaosSpec.from_json(spec.to_json()) == spec

    def test_from_json_none_and_empty(self):
        assert ChaosSpec.from_json(None) is None
        assert ChaosSpec.from_json("") is None
        assert ChaosSpec().empty
        assert not ChaosSpec(kill=(0,)).empty


@pytest.fixture
def queue(tmp_path) -> DurableQueue:
    directory = create_campaign(
        "unit", _square, list(range(4)), root=tmp_path / "campaigns",
        max_attempts=3, backoff_base_s=0.01,
    )
    return DurableQueue(directory)


class TestDurableQueueUnits:
    def test_lease_is_exclusive(self, queue):
        assert queue.try_claim(0, "w0")
        assert not queue.try_claim(0, "w1")
        content, _ = queue.read_lease(0)
        assert content["worker"] == "w0" and content["task"] == 0

    def test_heartbeat_refreshes_mtime(self, queue):
        queue.try_claim(0, "w0")
        import os

        stale = time.time() - 60
        os.utime(queue.lease_path(0), (stale, stale))
        _, before = queue.read_lease(0)
        assert queue.heartbeat(0, "w0")
        _, after = queue.read_lease(0)
        assert after > before

    def test_heartbeat_fails_after_ownership_lost(self, queue):
        queue.try_claim(0, "w0")
        queue.reclaim(0, "stale")
        queue.try_claim(0, "w1")
        assert not queue.heartbeat(0, "w0")
        assert queue.heartbeat(0, "w1")

    def test_release_is_owner_checked(self, queue):
        queue.try_claim(0, "w0")
        queue.release(0, "other")  # not the owner: no-op
        assert queue.read_lease(0) is not None
        queue.release(0, "w0")
        assert queue.read_lease(0) is None

    def test_torn_lease_reads_as_garbage_but_exists(self, queue):
        assert queue.try_claim(0, "w0", tear_after=7)
        content, _ = queue.read_lease(0)
        assert content is None  # torn: unparseable
        assert not queue.try_claim(0, "w1")  # still held

    def test_result_round_trip(self, queue):
        queue.write_result(2, {"value": 42})
        assert queue.completed(2)
        assert queue.load_result(2) == (True, {"value": 42})

    def test_torn_result_is_dropped(self, queue):
        queue.write_result(2, {"value": 42})
        queue.result_path(2).write_bytes(b"not a pickle")
        assert queue.load_result(2) == (False, None)
        assert not queue.result_path(2).exists()  # reruns on resume

    def test_failure_schedules_backoff_then_quarantines(self, queue):
        assert queue.attempts(1) == 0
        assert queue.record_failure(1, "err one", "fail") == 1
        assert queue.attempts(1) == 1
        assert queue.eligible_at(1) > time.time() - 1
        assert not queue.quarantined(1)
        assert queue.record_failure(1, "err two", "fail") == 2
        assert queue.record_failure(1, "err three", "fail") == 3
        assert queue.quarantined(1)
        doc = __import__("json").loads(
            queue.quarantine_path(1).read_text()
        )
        assert doc["attempts"] == 3 and "err three" in doc["error"]

    def test_reclaim_drops_lease_and_counts_attempt(self, queue):
        queue.try_claim(3, "w0")
        assert queue.reclaim(3, "worker-death") == 1
        assert queue.read_lease(3) is None
        assert queue.attempts(3) == 1

    def test_complete_clears_backoff_and_lease(self, queue):
        queue.record_failure(0, "once", "fail")
        queue.try_claim(0, "w0")
        queue.complete(0, 99, worker="w0")
        assert queue.load_result(0) == (True, 99)
        assert not queue.backoff_path(0).exists()
        assert queue.read_lease(0) is None

    def test_tasks_digest_guards_torn_task_list(self, queue):
        queue.tasks_path.write_bytes(
            pickle.dumps([1, 2, 3], protocol=5)
        )
        with pytest.raises(CampaignError, match="torn or was modified"):
            queue.load_tasks()


class TestCreateCampaign:
    def test_duplicate_id_is_refused(self, tmp_path):
        root = tmp_path / "c"
        create_campaign("dup", _square, [1], root=root)
        with pytest.raises(CampaignError, match="already exists"):
            create_campaign("dup", _square, [1], root=root)

    def test_empty_task_list_is_refused(self, tmp_path):
        with pytest.raises(CampaignError, match="at least one task"):
            create_campaign("empty", _square, [], root=tmp_path)

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden"])
    def test_invalid_ids(self, bad):
        with pytest.raises(CampaignError, match="invalid campaign id"):
            campaign_dir(bad)

    def test_manifest_rename_is_the_commit_point(self, tmp_path):
        """A campaign dir without a manifest (creation died before the
        final rename) is not a campaign: status refuses it rather than
        trusting half-written state."""
        root = tmp_path / "c"
        directory = create_campaign("torn", _square, [1, 2], root=root)
        (directory / "manifest.json").unlink()
        with pytest.raises(CampaignError, match="no campaign at"):
            DurableQueue(directory).manifest()

    def test_enqueue_records_are_journaled(self, tmp_path):
        directory = create_campaign(
            "journal", _square, [5, 6, 7], root=tmp_path / "c"
        )
        records, torn = DurableQueue(directory).ledger.replay()
        assert torn == 0
        assert [r["type"] for r in records] == [
            "created", "enqueue", "enqueue", "enqueue",
        ]


class TestRunCampaign:
    def test_end_to_end_map(self, tmp_path):
        result = run_campaign(
            _square, list(range(6)), campaign_id="e2e",
            root=tmp_path / "c", workers=2,
        )
        assert result.results == [x * x for x in range(6)]
        assert result.ok and result.status.done

    def test_existing_without_resume_is_refused(self, tmp_path):
        run_campaign(
            _square, [1], campaign_id="once", root=tmp_path / "c"
        )
        with pytest.raises(CampaignError, match="pass resume=True"):
            run_campaign(
                _square, [1], campaign_id="once", root=tmp_path / "c"
            )

    def test_resume_of_complete_campaign_is_a_pure_merge(self, tmp_path):
        root = tmp_path / "c"
        first = run_campaign(
            _square, list(range(4)), campaign_id="merge", root=root
        )
        queue = DurableQueue(campaign_dir("merge", root))
        claims_before = sum(
            1 for r in queue.ledger.replay()[0] if r["type"] == "claim"
        )
        again = run_campaign(
            _square, campaign_id="merge", root=root, resume=True
        )
        claims_after = sum(
            1 for r in queue.ledger.replay()[0] if r["type"] == "claim"
        )
        assert claims_after == claims_before  # nothing re-executed
        assert pickle.dumps(again.results) == pickle.dumps(first.results)
        assert again.status.resumes == 1

    def test_missing_campaign_without_items_is_refused(self, tmp_path):
        with pytest.raises(CampaignError, match="does not exist"):
            run_campaign(
                _square, campaign_id="ghost", root=tmp_path / "c",
                resume=True,
            )

    def test_params_fingerprint_mismatch_is_refused(self, tmp_path):
        root = tmp_path / "c"
        run_campaign(
            _square, [1], campaign_id="fp", root=root,
            params_fingerprint="aaaa",
        )
        with pytest.raises(CampaignError, match="different parameters"):
            run_campaign(
                _square, campaign_id="fp", root=root, resume=True,
                params_fingerprint="bbbb",
            )

    def test_poison_task_is_quarantined_and_campaign_completes(
        self, tmp_path
    ):
        result = run_campaign(
            _boom, [0, 1], campaign_id="poison", root=tmp_path / "c",
            workers=1, max_attempts=2, backoff_base_s=0.01,
        )
        assert sorted(result.quarantined) == [0, 1]
        assert result.results == [None, None]
        assert not result.ok
        status = result.status
        assert status.done and status.quarantined == 2
        assert status.retries >= 2  # the pre-quarantine attempts
        assert "QUARANTINED task 0" in status.render()

    def test_flaky_task_retries_then_succeeds(self, tmp_path):
        counter = tmp_path / "attempts.txt"
        result = run_campaign(
            _flaky, [(str(counter), 2, 7)], campaign_id="flaky",
            root=tmp_path / "c", workers=1, max_attempts=5,
            backoff_base_s=0.01,
        )
        assert result.results == [70]
        assert result.ok
        assert result.status.retries == 2  # two transient failures
        assert int(counter.read_text()) == 3

    def test_sigkilled_worker_is_reclaimed_and_task_retried(
        self, tmp_path
    ):
        """The headline recovery path: a worker SIGKILLed mid-task
        (chaos kill point) loses its lease to the coordinator, the
        retry succeeds, and the ledger shows the reclaim."""
        result = run_campaign(
            _square, list(range(4)), campaign_id="kill",
            root=tmp_path / "c", workers=2, heartbeat_s=0.1,
            lease_timeout_s=1.5, backoff_base_s=0.01,
            chaos=ChaosSpec(kill=(2,)),
        )
        assert result.results == [0, 1, 4, 9]
        assert result.status.reclaimed_leases >= 1
        assert result.status.retries >= 1

    def test_stalled_task_hits_wall_clock_timeout(self, tmp_path):
        """A wedged task with a LIVE heartbeat: only task_timeout_s
        catches it; the worker is killed and the retry completes."""
        result = run_campaign(
            _square, list(range(3)), campaign_id="stall",
            root=tmp_path / "c", workers=2, heartbeat_s=0.1,
            lease_timeout_s=30.0, task_timeout_s=1.0,
            backoff_base_s=0.01,
            chaos=ChaosSpec(stall=(1,), stall_s=60.0),
        )
        assert result.results == [0, 1, 4]
        assert result.status.timeouts >= 1

    def test_torn_lease_is_reclaimed_via_stale_heartbeat(self, tmp_path):
        # workers=1 on purpose: with two workers the peer can claim
        # task 0 normally in the window between the chaos marker and
        # the torn lease write, and then no torn lease ever lands.
        # A single worker tears + dies, the respawned replacement
        # finds the unreadable lease, and reclaim must go through the
        # stale-heartbeat path.
        result = run_campaign(
            _square, list(range(3)), campaign_id="tlease",
            root=tmp_path / "c", workers=1, heartbeat_s=0.1,
            lease_timeout_s=1.0, backoff_base_s=0.01,
            chaos=ChaosSpec(torn_lease=(0,)),
        )
        assert result.results == [0, 1, 4]
        assert result.status.reclaimed_leases >= 1

    def test_torn_ledger_line_is_detected_not_fatal(self, tmp_path):
        result = run_campaign(
            _square, list(range(3)), campaign_id="tledger",
            root=tmp_path / "c", workers=2, heartbeat_s=0.1,
            lease_timeout_s=1.5, backoff_base_s=0.01,
            chaos=ChaosSpec(torn_ledger=(1,)),
        )
        assert result.results == [0, 1, 4]
        assert result.status.torn_records >= 1


class TestStatusAndMerge:
    def test_merge_incomplete_campaign_is_refused(self, tmp_path):
        directory = create_campaign(
            "partial", _square, list(range(3)), root=tmp_path / "c"
        )
        DurableQueue(directory).complete(0, 0)
        with pytest.raises(CampaignError, match="incomplete"):
            merge_campaign(directory)

    def test_status_counts(self, tmp_path):
        directory = create_campaign(
            "counts", _square, list(range(4)), root=tmp_path / "c",
            max_attempts=2, backoff_base_s=0.01,
        )
        queue = DurableQueue(directory)
        queue.complete(0, 0)
        queue.try_claim(1, "w0")
        queue.record_failure(2, "boom", "fail")
        queue.record_failure(3, "boom", "fail")
        queue.record_failure(3, "boom", "fail")  # -> quarantine
        status = campaign_status(directory)
        assert (status.completed, status.active_leases) == (1, 1)
        assert status.quarantined == 1
        # The quarantining attempt itself is journaled as "quarantine",
        # not "fail": 2 retries (task 2 once, task 3 once).
        assert status.retries == 2
        assert not status.done

    def test_list_campaigns(self, tmp_path):
        root = tmp_path / "c"
        assert list_campaigns(root) == []
        create_campaign("aaa", _square, [1], root=root)
        create_campaign("bbb", _square, [1], root=root)
        assert [s.campaign for s in list_campaigns(root)] == [
            "aaa", "bbb",
        ]


# ---------------------------------------------------------------------
# Satellite: the determinism contract, property-based.
# ---------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_N_TASKS = 6


def _reference_bytes(tmp_path: Path) -> bytes:
    """The uninterrupted in-order run every scrambled history must
    reproduce byte-for-byte.  Idempotent: hypothesis reuses one
    tmp_path across examples."""
    directory = tmp_path / "ref" / "ref"
    if not (directory / "manifest.json").exists():
        create_campaign(
            "ref", _square, list(range(_N_TASKS)), root=tmp_path / "ref"
        )
        queue = DurableQueue(directory)
        for task in range(_N_TASKS):
            queue.complete(task, _square(task))
    merged = merge_campaign(directory)
    return pickle.dumps(merged.results, protocol=5)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    order=st.permutations(list(range(_N_TASKS))),
    retries=st.lists(
        st.integers(min_value=0, max_value=2),
        min_size=_N_TASKS, max_size=_N_TASKS,
    ),
    duplicate=st.lists(
        st.booleans(), min_size=_N_TASKS, max_size=_N_TASKS
    ),
)
def test_merge_is_independent_of_history(
    tmp_path, order, retries, duplicate
):
    """Any completion order, any retry count, any duplicate completion
    (a reclaimed task finishing twice): the merged campaign result is
    byte-identical to the uninterrupted in-order run."""
    import shutil

    reference = _reference_bytes(tmp_path)
    root = tmp_path / "scrambled"
    shutil.rmtree(root, ignore_errors=True)
    directory = create_campaign(
        "ref", _square, list(range(_N_TASKS)), root=root,
        max_attempts=10, backoff_base_s=0.0,
    )
    queue = DurableQueue(directory)
    for task in order:
        for attempt in range(retries[task]):
            queue.try_claim(task, f"w{attempt}")
            queue.reclaim(task, "worker-death: simulated")
        queue.try_claim(task, "final")
        queue.complete(task, _square(task), worker="final")
        if duplicate[task]:
            # A zombie worker finishing after the reclaim: identical
            # value through an atomic rename — harmless by design.
            queue.write_result(task, _square(task))
    merged = merge_campaign(directory)
    assert pickle.dumps(merged.results, protocol=5) == reference
