"""Unit tests for validation, partitioning, and statistics."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    DAG,
    DAGBuilder,
    OpType,
    boundary_values,
    check_partitioning,
    dag_stats,
    fan_in_histogram,
    fan_out_histogram,
    partition_topological,
    validate,
)
from repro.testing import make_chain_dag, make_random_dag


class TestValidate:
    def test_valid_dag_passes(self):
        validate(make_random_dag(21))

    def test_dead_node_detected(self):
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        b.add_add([x, y])
        b.add_mul([x, y])  # both are sinks; fine
        validate(b.build())
        # Now a leaf that feeds nothing:
        b2 = DAGBuilder()
        b2.add_input()
        x2, y2 = b2.add_input(), b2.add_input()
        b2.add_add([x2, y2])
        with pytest.raises(GraphError):
            validate(b2.build())

    def test_binary_only_flag(self):
        dag = make_random_dag(22, max_fan_in=5)
        with pytest.raises(GraphError):
            validate(dag, binary_only=True)


class TestPartition:
    def test_partitions_respect_size(self):
        dag = make_random_dag(23, num_ops=300)
        parts = partition_topological(dag, max_nodes=50)
        assert all(len(p) <= 50 for p in parts.parts)
        check_partitioning(dag, parts)

    def test_partitions_cover_all_nodes(self):
        dag = make_random_dag(24, num_ops=200)
        parts = partition_topological(dag, max_nodes=64)
        assert sum(len(p) for p in parts.parts) == dag.num_nodes

    def test_single_partition_when_large_budget(self):
        dag = make_random_dag(25)
        parts = partition_topological(dag, max_nodes=10_000)
        assert parts.num_parts == 1
        assert parts.cut_edges == 0

    def test_invalid_budget(self):
        with pytest.raises(GraphError):
            partition_topological(make_random_dag(26), max_nodes=0)

    def test_boundary_values_are_cross_partition_producers(self):
        dag = make_random_dag(27, num_ops=200)
        parts = partition_topological(dag, max_nodes=40)
        imports = boundary_values(dag, parts)
        for part_idx, needed in enumerate(imports):
            for producer in needed:
                assert parts.part_of[producer] < part_idx
                assert dag.op(producer) is not OpType.INPUT

    def test_chain_partitions_in_order(self):
        dag = make_chain_dag(length=30)
        parts = partition_topological(dag, max_nodes=10)
        check_partitioning(dag, parts)
        assert parts.num_parts >= 3


class TestStats:
    def test_stats_fields(self):
        dag = make_random_dag(28)
        s = dag_stats(dag)
        assert s.nodes == dag.num_nodes
        assert s.operations == dag.num_operations
        assert s.avg_parallelism == pytest.approx(
            dag.num_nodes / s.longest_path
        )
        assert 0.0 <= s.add_fraction <= 1.0

    def test_as_row_format(self):
        row = dag_stats(make_random_dag(29, name="w")).as_row()
        assert row["workload"] == "w"
        assert "n/l" in row

    def test_fan_in_histogram_counts_ops_only(self):
        dag = make_random_dag(30)
        hist = fan_in_histogram(dag)
        assert sum(hist.values()) == dag.num_operations
        assert all(k >= 2 for k in hist)

    def test_fan_out_histogram_total(self):
        dag = make_random_dag(31)
        hist = fan_out_histogram(dag)
        assert sum(hist.values()) == dag.num_nodes
        assert sum(k * v for k, v in hist.items()) == dag.num_edges
