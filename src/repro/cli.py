"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's ``run.sh`` workflow:

* ``compile``  — compile a DAG file (JSON/edge-list) and report stats;
* ``run``      — compile + simulate a workload and verify against the
  golden model;
* ``suite``    — compile the Table-I suite and print the fig. 14-style
  throughput table;
* ``dse``      — run the design-space exploration and print fig. 11's
  optimum corners;
* ``sweep``    — the same DSE through the parallel orchestrator
  (``--jobs N``) with the content-addressed artifact cache;
* ``all``      — every figure/table experiment, fanned out over
  worker processes;
* ``encode``   — emit the packed binary program for a DAG;
* ``fuzz``     — differential verification: seeded synthetic
  scenarios through the three-way executor cross-check, shrinking
  any mismatch to a replayable case under ``results/repro_cases/``;
  ``--campaign <id>`` makes the run durable (checkpointed, killable,
  resumable with ``--resume``), ``--task-timeout S`` bounds each
  scenario's wall clock;
* ``campaign`` — status of durable campaigns: completion,
  quarantine, retries, reclaimed leases, torn ledger lines;
* ``chaos``    — the campaign runner's own adversary: SIGKILL the
  coordinator at seeded points and prove the resumed merge is
  byte-identical, then quarantine an injected poison task;
* ``serve``    — the asyncio inference service: dynamic micro-batching
  over warm execution plans behind a minimal HTTP front end;
* ``loadgen``  — drive a server (or an in-process service) with a
  seeded traffic schedule and report latency percentiles, optionally
  verifying every response bitwise against direct execution;
* ``trace``    — run any subcommand with span tracing enabled and
  export a Perfetto-loadable Chrome trace (``repro trace --
  loadgen --router 2 ...``); ``run``/``sweep``/``fuzz``/``serve``/
  ``loadgen`` also take ``--trace FILE`` / ``--metrics FILE``
  directly;
* ``profile``  — span-level profile of one workload: per-pass compile
  times, plan lowering, fused/codegen kernel timings and the batch
  sweep, aggregated into a table.

The evaluation commands (``run``, ``suite``, ``dse``, ``sweep``,
``all``) share ``--cache-dir``/``--no-cache``: compiled programs and
lowered execution plans are memoized on disk keyed by content, so a
warm re-run skips compilation entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .arch import ArchConfig, encode_program
from .compiler import compile_dag
from .graphs import from_edge_list, from_json, DAG
from .sim import ENGINES, evaluate_dag, run_program
from .workloads import DEFAULT_SCALE, build_workload, workload_names


def _parse_config(text: str) -> ArchConfig:
    """Parse ``D3-B64-R32`` style configuration strings."""
    try:
        parts = dict(
            (piece[0].upper(), int(piece[1:]))
            for piece in text.split("-")
        )
        return ArchConfig(
            depth=parts["D"], banks=parts["B"], regs_per_bank=parts["R"]
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(
            f"invalid config {text!r}; expected e.g. D3-B64-R32 ({exc})"
        )


def _load_dag(path: str) -> DAG:
    text = Path(path).read_text()
    if path.endswith(".json"):
        return from_json(text)
    return from_edge_list(text)


def _resolve_workload(name_or_path: str, scale: float) -> DAG:
    if Path(name_or_path).exists():
        return _load_dag(name_or_path)
    return build_workload(name_or_path, scale=scale)


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    import os

    from .runner.cache import DEFAULT_CACHE_DIR

    default_dir = os.environ.get("REPRO_CACHE_DIR") or str(DEFAULT_CACHE_DIR)
    parser.add_argument(
        "--cache-dir", default=default_dir, metavar="DIR",
        help="artifact-cache directory (compiled programs and "
        f"execution plans; default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the artifact cache entirely (no reads, no writes)",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the orchestrator (default 1: serial; "
        "results are identical at any N)",
    )


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    """Durable-campaign flags shared by ``fuzz`` and ``sweep``."""
    parser.add_argument(
        "--campaign", default="", metavar="ID",
        help="run through the durable work queue under this campaign "
        "id: progress is checkpointed under the cache dir, the run "
        "is killable and resumable, and the merged result is "
        "byte-identical to an uninterrupted one",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue an existing --campaign where it left off "
        "(finished tasks are skipped via their checkpoints)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="K",
        help="campaign mode: failures per task before it is "
        "quarantined as poison instead of sinking the run (default 3)",
    )
    parser.add_argument(
        "--campaign-root", default="", metavar="DIR",
        help="override the campaign directory "
        "(default <cache dir>/campaigns)",
    )


def _setup_cache(args: argparse.Namespace) -> None:
    import os

    from .runner.cache import configure_cache

    # REPRO_NO_CACHE disables caching for library use (see
    # repro.runner.cache); honor it for CLI runs too.
    disabled = bool(
        getattr(args, "no_cache", False) or os.environ.get("REPRO_NO_CACHE")
    )
    configure_cache(
        getattr(args, "cache_dir", None), enabled=not disabled
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """``--trace``/``--metrics`` output flags (see ``repro trace`` for
    the wrapper form that works with any subcommand)."""
    parser.add_argument(
        "--trace", default="", metavar="FILE",
        help="enable span tracing and write a Chrome trace-event JSON "
        "file on exit (viewable at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", default="", metavar="FILE",
        help="write this process's metrics registry as Prometheus "
        "text exposition on exit",
    )


def _finish_obs(args: argparse.Namespace) -> None:
    """Export ``--trace``/``--metrics`` outputs after a command ran."""
    trace_path = getattr(args, "trace", "")
    metrics_path = getattr(args, "metrics", "")
    if trace_path:
        from .obs import trace

        count = trace.export_chrome(trace_path)
        print(f"trace: {count} span(s) -> {trace_path}", file=sys.stderr)
    if metrics_path:
        from .obs.metrics import get_registry, render_registries

        Path(metrics_path).write_text(render_registries(get_registry()))
        print(f"metrics -> {metrics_path}", file=sys.stderr)


def _run_with_obs(args: argparse.Namespace) -> int:
    """Run one parsed subcommand under its ``--trace``/``--metrics``
    flags (when it has them); the export runs even when the command
    fails, so a crashed run still leaves its trace behind."""
    if getattr(args, "trace", ""):
        from .obs import trace

        trace.enable()
    try:
        return args.func(args)
    finally:
        _finish_obs(args)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "workload",
        help="Table-I workload name (e.g. tretail) or a DAG file "
        "(.json / edge list)",
    )
    parser.add_argument(
        "--config", default="D3-B64-R32",
        help="architecture point, default: the paper's min-EDP design",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help="workload regeneration scale (named workloads only)",
    )
    parser.add_argument("--seed", type=int, default=0)


def cmd_compile(args: argparse.Namespace) -> int:
    dag = _resolve_workload(args.workload, args.scale)
    config = _parse_config(args.config)
    result = compile_dag(
        dag,
        config,
        seed=args.seed,
        partition_threshold=args.partition_threshold,
        jobs=args.jobs or 1,
    )
    s = result.stats
    print(f"workload : {dag.name} ({s.num_nodes} nodes, "
          f"{s.num_operations} binary ops)")
    print(f"config   : {config} ({config.num_pes} PEs)")
    if s.pieces:
        print(f"pieces   : {s.pieces} partitions "
              f"(<= {args.partition_threshold} nodes each, "
              f"jobs={args.jobs or 1})")
    print(f"blocks   : {s.num_blocks} (PE utilization "
          f"{100 * s.pe_utilization:.0f}%)")
    print(f"program  : {result.total_instructions} instructions "
          f"(exec {s.exec_instructions}, copy {s.copy_instructions}, "
          f"load {s.load_instructions}, store {s.store_instructions}, "
          f"nop {s.nop_instructions})")
    print(f"conflicts: {s.bank_conflicts}   spills: {s.spills}")
    print(f"compile  : {s.compile_seconds:.2f}s")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import random

    import numpy as np

    from .runner.cache import cached_compile

    _setup_cache(args)
    dag = _resolve_workload(args.workload, args.scale)
    config = _parse_config(args.config)
    result = cached_compile(dag, config, seed=args.seed, validate_input=True)
    ops = result.stats.num_operations

    if args.batch < 0:
        raise SystemExit(
            f"--batch must be >= 0 (0 disables batching), got {args.batch}"
        )
    if args.batch > 0:
        return _run_batched(args, dag, config, result, ops)

    rng = random.Random(args.seed)
    inputs = [rng.uniform(0.9, 1.1) for _ in range(dag.num_inputs)]
    sim = run_program(result.program, inputs)
    golden = evaluate_dag(dag, inputs)

    errors = 0
    for node in dag.sinks():
        var = result.node_map[node]
        if not np.isclose(sim.values[var], golden[node], equal_nan=True):
            errors += 1
    gops = ops / (sim.cycles / config.frequency_hz) / 1e9
    print(f"{dag.name}: {sim.cycles} cycles, {gops:.2f} GOPS @"
          f"{config.frequency_hz / 1e6:.0f}MHz")
    if errors:
        print(f"FAILED: {errors} output mismatches vs golden model")
        return 1
    print(f"verified: all {len(dag.sinks())} outputs match the golden "
          "model")
    return 0


def _run_batched(args, dag: DAG, config, result, ops: int) -> int:
    """``run --batch N``: plan once, sweep N rows, spot-check golden."""
    import numpy as np

    from .runner.cache import cached_plan
    from .sim import BatchSimulator, batch_perf_report

    plan = cached_plan(result)  # phase 1: verified lowering (memoized)
    rng = np.random.default_rng(args.seed)
    matrix = rng.uniform(0.9, 1.1, size=(args.batch, dag.num_inputs))
    sim = BatchSimulator(plan, engine=args.engine)
    batch = sim.run(matrix)  # phase 2: vector sweep
    perf = batch_perf_report(
        dag.name, config, ops, plan.cycles_per_row, batch.batch,
        host_seconds=batch.host_seconds,
    )

    from .graphs import OpType

    errors = 0
    checked = min(batch.batch, 8)
    for row in range(checked):
        golden = evaluate_dag(dag, list(matrix[row]))
        for node in dag.sinks():
            if dag.op(node) is OpType.INPUT:
                continue  # pass-through inputs are never stored
            var = result.node_map[node]
            if var not in batch.outputs:
                errors += 1  # a computed sink must reach data memory
            elif not np.isclose(
                batch.outputs[var][row], golden[node], equal_nan=True
            ):
                errors += 1
    print(f"{dag.name}: batch {batch.batch}, {plan.cycles_per_row} "
          f"cycles/row, {perf.throughput_gops:.2f} GOPS @"
          f"{config.frequency_hz / 1e6:.0f}MHz "
          f"({perf.rows_per_second:,.0f} rows/s on device)")
    print(f"host sweep: {batch.host_seconds * 1e3:.1f}ms "
          f"({batch.host_rows_per_second:,.0f} rows/s simulated, "
          f"engine {sim.engine})")
    if errors:
        print(f"FAILED: {errors} output mismatches vs golden model "
              f"across {checked} checked rows")
        return 1
    print(f"verified: {checked}/{batch.batch} rows spot-checked against "
          "the golden model")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .experiments.common import measure

    _setup_cache(args)
    config = _parse_config(args.config)
    rows = []
    for name in workload_names(("pc", "sptrsv")):
        dag = build_workload(name, scale=args.scale)
        m = measure(dag, config, seed=args.seed)
        rows.append(
            (
                name,
                dag.num_nodes,
                m.counters.cycles,
                round(m.throughput_gops, 2),
                round(m.energy.energy_per_op_pj, 1),
                m.compile_result.stats.bank_conflicts,
            )
        )
    print(
        format_table(
            ["workload", "nodes", "cycles", "GOPS", "pJ/op", "conflicts"],
            rows,
            title=f"suite @ scale {args.scale} on {config}",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Fig. 11 DSE through the parallel orchestrator + artifact cache.

    Also serves the ``dse`` subcommand (same wiring, no
    ``--workloads`` flag).
    """
    from .errors import WorkloadError
    from .experiments import fig11_dse
    from .workloads import get_spec

    _setup_cache(args)
    requested = tuple(
        name.strip()
        for name in getattr(args, "workloads", "").split(",")
        if name.strip()
    )
    names = requested or fig11_dse.DEFAULT_DSE_WORKLOADS
    from .workloads import GROUPS

    for name in names:
        if name in GROUPS:
            continue  # expanded by the sweep itself
        try:
            get_spec(name)
        except WorkloadError as exc:
            raise SystemExit(str(exc))
    experiment = fig11_dse.run(
        workload_names=names,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        progress=sys.stderr.isatty(),
        campaign_id=getattr(args, "campaign", "") or None,
        resume=getattr(args, "resume", False),
        campaign_root=getattr(args, "campaign_root", "") or None,
        max_attempts=getattr(args, "max_attempts", 3),
    )
    print(fig11_dse.render(experiment))
    if getattr(args, "campaign", ""):
        from .runner.queue import campaign_status

        status = campaign_status(
            args.campaign, root=args.campaign_root or None
        )
        print(status.render())
    return 0


def cmd_all(args: argparse.Namespace) -> int:
    """Every figure/table experiment, fanned out over worker processes."""
    from .runner.registry import experiment_names, run_all

    _setup_cache(args)
    only = args.only.split(",") if args.only else None
    if only:
        unknown = [n for n in only if n not in experiment_names()]
        if unknown:
            raise SystemExit(
                f"unknown experiments {unknown}; choose from: "
                + ", ".join(experiment_names())
            )
    runs = run_all(
        names=only,
        jobs=args.jobs,
        golden=args.quick,
        progress=sys.stderr.isatty(),
    )
    for name, run in runs.items():
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(run.rendered)
        print()
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: synthetic scenarios x executor cross-check.

    Exit status 0 means every scenario agreed across the reference
    interpreter, scalar simulator, batch engine, analytic counters and
    the warm-cache path; 1 means at least one mismatch was found (and
    shrunk to a replayable case under ``--out-dir``).
    """
    from .errors import VerificationError
    from .verify import fuzz

    _setup_cache(args)
    families = tuple(
        name.strip() for name in args.families.split(",") if name.strip()
    )
    try:
        report = fuzz(
            budget=args.budget,
            seed=args.seed,
            jobs=args.jobs,
            families=families or None,
            fault=args.inject_fault or None,
            write_artifacts=not args.no_artifacts,
            out_dir=args.out_dir,
            progress=sys.stderr.isatty(),
            image_all=args.image_all,
            task_timeout_s=args.task_timeout,
            campaign_id=args.campaign or None,
            resume=args.resume,
            max_attempts=args.max_attempts,
            campaign_root=args.campaign_root or None,
        )
    except VerificationError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    if args.campaign:
        from .runner.queue import campaign_status

        status = campaign_status(
            args.campaign, root=args.campaign_root or None
        )
        print(status.render())
    return 0 if report.ok else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    """Inspect durable campaigns: per-campaign status or a listing.

    Shows completion/quarantine counts plus the recovery history —
    retries, reclaimed leases, task timeouts, resumes and torn ledger
    lines — so an operator can tell how rough a campaign's life was.
    """
    from .errors import ReproError
    from .runner.queue import campaign_status, list_campaigns

    _setup_cache(args)
    root = args.campaign_root or None
    if args.id:
        try:
            print(campaign_status(args.id, root=root).render())
        except ReproError as exc:
            raise SystemExit(str(exc))
        return 0
    statuses = list_campaigns(root)
    if not statuses:
        print("no campaigns")
        return 0
    for status in statuses:
        print(status.render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """The CI chaos job: kill/resume identity + poison quarantine.

    Phase 1 SIGKILLs a fuzz campaign's coordinator (process group and
    all) at seeded points and resumes it each time; the merged report
    must be byte-identical to an uninterrupted control run with zero
    oracle mismatches.  Phase 2 injects a poison scenario and checks
    it is quarantined while the rest of the campaign completes
    unchanged.  Exit 0 only if both hold.
    """
    from .errors import ReproError
    from .verify.chaos import run_chaos_fuzz, run_quarantine_fuzz

    _setup_cache(args)
    failures = 0
    try:
        identity = run_chaos_fuzz(
            budget=args.budget,
            seed=args.seed,
            jobs=args.jobs,
            kills=args.kills,
            kill_window=(args.kill_after, args.kill_before),
            task_timeout_s=args.task_timeout,
            campaign_root=args.campaign_root or None,
            verbose=sys.stderr.isatty(),
        )
        print(identity.render())
        print()
        failures += 0 if identity.ok and not identity.quarantined else 1
        quarantine = run_quarantine_fuzz(
            budget=max(8, args.budget // 8),
            seed=args.seed,
            jobs=args.jobs,
            poison_task=args.poison_task,
            task_timeout_s=args.task_timeout,
            campaign_root=args.campaign_root or None,
        )
        print(quarantine.render())
        failures += 0 if quarantine.ok else 1
    except ReproError as exc:
        raise SystemExit(str(exc))
    if failures:
        print(f"FAILED: {failures} chaos phase(s) broke determinism")
        return 1
    print("chaos: both phases clean — kill/resume is byte-identical "
          "and poison tasks quarantine")
    return 0


def _serve_specs(args: argparse.Namespace) -> list:
    from .serve import ProgramSpec

    names = [n.strip() for n in args.programs.split(",") if n.strip()]
    if not names:
        raise SystemExit("--programs must name at least one workload")
    return [
        ProgramSpec(
            name=name,
            config_label=args.config,
            seed=args.seed,
            scale=args.scale,
            partition_threshold=args.partition_threshold,
            engine=args.engine,
        )
        for name in names
    ]


def _serve_policy(args: argparse.Namespace):
    from .serve import BatchPolicy

    return BatchPolicy(
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_queue=args.max_queue,
    )


async def serve_forever(
    specs: list,
    policy,
    workers: int = 0,
    host: str = "127.0.0.1",
    port: int = 8321,
    stop=None,
    on_ready=None,
) -> int:
    """Register programs, bind the HTTP server, run until ``stop``.

    ``stop`` is an :class:`asyncio.Event` (the CLI wires SIGINT/SIGTERM
    to it; tests set it directly); ``on_ready(host, port)`` fires once
    the socket is listening.
    """
    import asyncio

    from .errors import ReproError
    from .serve import InferenceService
    from .serve.http import start_http_server

    service = InferenceService(policy=policy, workers=workers)
    for spec in specs:
        try:
            program = service.register(spec)
        except ReproError as exc:
            print(f"cannot serve {spec.name}: {exc}", file=sys.stderr)
            return 1
        print(
            f"registered {program.key}: {program.num_nodes} nodes, "
            f"{program.num_inputs} inputs, "
            f"{program.cycles_per_row} cycles/row"
        )
    stop = stop if stop is not None else asyncio.Event()
    async with service:
        server = await start_http_server(service, host=host, port=port)
        bound_host, bound_port = server.sockets[0].getsockname()[:2]
        print(
            f"serving {len(specs)} program(s) on "
            f"http://{bound_host}:{bound_port} "
            f"(max_batch={policy.max_batch}, "
            f"max_wait={policy.max_wait_s * 1e3:g}ms, workers={workers})",
            flush=True,
        )
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        try:
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()
    return 0


async def serve_router_forever(
    args: argparse.Namespace,
    stop=None,
    on_ready=None,
) -> int:
    """``repro serve --shards N``: spawn N shard processes over the
    shared artifact cache and front them with the consistent-hash
    router's HTTP dispatch (``/infer`` + ``/admin`` routes).

    The front process builds the served programs first — warming the
    shared cache (so every shard registration is a load, not a
    compile) and learning each program's content fingerprint, the
    routing identity.
    """
    import asyncio

    from .errors import ReproError
    from .serve import (
        ProcessShard,
        ShardRouter,
        TenantSLO,
        build_served_program,
        router_dispatch,
    )
    from .serve.http import start_http_server

    try:
        specs = _serve_specs(args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    try:
        local = {spec.name: build_served_program(spec) for spec in specs}
    except ReproError as exc:
        print(f"cannot build programs: {exc}", file=sys.stderr)
        return 1
    trace_dir = _shard_trace_dir()
    shards = [
        ProcessShard(
            f"shard{i}", _shard_argv(args, trace_dir=trace_dir, index=i)
        )
        for i in range(args.shards)
    ]
    router = ShardRouter(
        shards,
        fingerprints={k: p.fingerprint for k, p in local.items()},
        default_slo=TenantSLO(max_inflight=args.max_queue),
    )
    stop = stop if stop is not None else asyncio.Event()
    async with router:
        server = await start_http_server(
            router_dispatch(router), host=args.host, port=args.port
        )
        bound_host, bound_port = server.sockets[0].getsockname()[:2]
        print(
            f"routing {len(specs)} program(s) across {args.shards} "
            f"shard(s) on http://{bound_host}:{bound_port} "
            f"(max_batch={args.max_batch}, "
            f"max_wait={args.max_wait_ms:g}ms)",
            flush=True,
        )
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        try:
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()
    if trace_dir is not None:
        _ingest_shard_traces(sorted(Path(trace_dir).glob("*.json")))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the inference server until interrupted."""
    import asyncio

    from .errors import ReproError

    _setup_cache(args)
    try:
        specs = _serve_specs(args)
        policy = _serve_policy(args)
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")

    async def main() -> int:
        stop = asyncio.Event()
        try:
            import signal

            loop = asyncio.get_running_loop()
            for signame in ("SIGINT", "SIGTERM"):
                loop.add_signal_handler(getattr(signal, signame), stop.set)
        except (NotImplementedError, OSError):  # pragma: no cover
            pass
        if args.shards > 1:
            return await serve_router_forever(args, stop=stop)
        return await serve_forever(
            specs,
            policy,
            workers=args.workers,
            host=args.host,
            port=args.port,
            stop=stop,
        )

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _shard_trace_dir() -> str | None:
    """A scratch directory for shard subprocess trace exports when
    tracing is on in this process, else ``None``."""
    import tempfile

    from .obs import trace

    if not trace.is_on():
        return None
    return tempfile.mkdtemp(prefix="repro-shard-traces-")


def _shard_argv(
    args: argparse.Namespace,
    trace_dir: str | None = None,
    index: int = 0,
) -> list[str]:
    """The ``repro serve`` command for one shard, host/port omitted
    (each :class:`~repro.serve.router.ProcessShard` probes its own
    port).  All shards share ``--cache-dir``, so one compiles and the
    rest warm-load.  With ``trace_dir`` set each shard exports its own
    Chrome trace on exit, which the coordinator merges into the final
    trace — serve-layer spans from every shard, one timeline."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--programs", args.programs,
        "--config", args.config,
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--max-batch", str(args.max_batch),
        "--max-wait-ms", str(args.max_wait_ms),
        "--max-queue", str(args.max_queue),
        "--workers", str(args.workers),
        "--cache-dir", args.cache_dir,
        "--engine", args.engine,
    ]
    if args.no_cache:
        cmd.append("--no-cache")
    if args.partition_threshold is not None:
        cmd += ["--partition-threshold", str(args.partition_threshold)]
    if trace_dir is not None:
        cmd += ["--trace", str(Path(trace_dir) / f"shard{index}.json")]
    return cmd


def _spawn_server(args: argparse.Namespace) -> tuple:
    """Start ``repro serve`` as a subprocess; returns
    (proc, host, port, trace_dir)."""
    import socket
    import subprocess

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    trace_dir = _shard_trace_dir()
    cmd = _shard_argv(args, trace_dir=trace_dir) + [
        "--host", "127.0.0.1", "--port", str(port)
    ]
    proc = subprocess.Popen(cmd)
    return proc, "127.0.0.1", port, trace_dir


async def _await_ready(host: str, port: int, timeout_s: float = 120.0):
    """Poll /healthz until the spawned server answers."""
    import asyncio

    from .serve.http import HttpClient

    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        client = HttpClient(host, port)
        try:
            status, doc = await client.request("GET", "/healthz")
            if status == 200 and doc.get("ok"):
                return
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            await client.close()
        if asyncio.get_running_loop().time() > deadline:
            raise SystemExit(
                f"server on {host}:{port} not ready after {timeout_s:.0f}s"
            )
        await asyncio.sleep(0.2)


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Generate traffic against a server and report latency/parity."""
    import asyncio

    from .errors import ReproError
    from .serve import (
        InferenceService,
        ParityChecker,
        build_served_program,
        run_open_loop,
        run_open_loop_http,
    )
    from .workloads.traffic import make_traffic

    _setup_cache(args)
    patterns = [p.strip() for p in args.patterns.split(",") if p.strip()]
    if not patterns:
        raise SystemExit("--patterns must name at least one pattern")
    if args.rows_per_request < 1:
        raise SystemExit(
            f"--rows-per-request must be >= 1, got {args.rows_per_request}"
        )
    if args.router < 0:
        raise SystemExit(f"--router must be >= 0, got {args.router}")
    if args.router and (args.spawn or args.url):
        raise SystemExit("--router is exclusive with --spawn/--url")
    if args.chaos != "none" and args.router < 2:
        raise SystemExit("--chaos needs --router >= 2")
    try:
        specs = _serve_specs(args)
    except ReproError as exc:
        raise SystemExit(str(exc))
    program_names = [spec.name for spec in specs]
    per_pattern = max(1, args.requests // len(patterns))

    # The client builds request rows (and the parity baseline) from
    # the same specs the server registered: same content fingerprint,
    # same artifact cache, so this is a load, not a compile.
    try:
        local = {
            spec.name: build_served_program(spec) for spec in specs
        }
    except ReproError as exc:
        raise SystemExit(f"cannot build client-side programs: {exc}")
    checker = (
        ParityChecker(lambda key: local[key]) if args.check else None
    )

    try:
        schedules = [
            make_traffic(
                pattern,
                per_pattern,
                rate=args.rate,
                seed=args.seed + i,
                programs=program_names,
            )
            for i, pattern in enumerate(patterns)
        ]
    except ReproError as exc:
        raise SystemExit(str(exc))

    async def drive_http(host: str, port: int) -> list:
        await _await_ready(host, port)
        reports = []
        for schedule in schedules:
            reports.append(await run_open_loop_http(
                host, port, schedule,
                lambda key: local[key].num_inputs,
                time_scale=args.time_scale,
                checker=checker,
                rows_per_request=args.rows_per_request,
            ))
        return reports

    async def drive_in_process() -> list:
        service = InferenceService(
            policy=_serve_policy(args), workers=args.workers
        )
        for program in local.values():
            service.install(program)
        reports = []
        async with service:
            for schedule in schedules:
                reports.append(await run_open_loop(
                    service, schedule,
                    time_scale=args.time_scale,
                    check=args.check,
                    rows_per_request=args.rows_per_request,
                ))
        return reports

    async def drive_router() -> list:
        from .serve import (
            LoadReport,
            ProcessShard,
            RouterSubmitter,
            ShardRouter,
            TenantSLO,
            slos_from_schedule,
        )
        from .serve.loadtest import _drive_open_loop

        trace_dir = _shard_trace_dir()
        shards = [
            ProcessShard(
                f"shard{i}",
                _shard_argv(args, trace_dir=trace_dir, index=i),
            )
            for i in range(args.router)
        ]
        slos: dict = {}
        for schedule in schedules:
            slos.update(slos_from_schedule(
                schedule, max_inflight=args.max_queue
            ))
        router = ShardRouter(
            shards,
            slos=slos,
            fingerprints={k: p.fingerprint for k, p in local.items()},
            default_slo=TenantSLO(max_inflight=args.max_queue),
        )

        async def chaos(schedule) -> None:
            # Bounce the shard owning the schedule's first program at
            # the campaign's midpoint: graceful drain+restart, or a
            # hard kill that the failover path must absorb first.
            await asyncio.sleep(
                schedule.duration_s * args.time_scale * 0.5
            )
            program = schedule.programs()[0]
            owner = router.shard_for(program)
            if args.chaos == "kill":
                router.shards[owner].kill()
                await asyncio.sleep(0.05)
            await router.restart(owner)

        reports = []
        async with router:
            for schedule in schedules:
                chaos_task = (
                    asyncio.ensure_future(chaos(schedule))
                    if args.chaos != "none" else None
                )
                outcomes, wall = await _drive_open_loop(
                    RouterSubmitter(router), schedule,
                    lambda key: local[key].num_inputs,
                    args.time_scale, checker,
                    rows_per_request=args.rows_per_request,
                )
                if chaos_task is not None:
                    await chaos_task
                reports.append(LoadReport(
                    pattern=schedule.pattern, mode="open",
                    outcomes=outcomes, wall_s=wall,
                    policy={
                        "max_batch": args.max_batch,
                        "max_wait_ms": args.max_wait_ms,
                        "shards": args.router,
                        "chaos": args.chaos,
                    },
                ))
            print(f"router: {router.stats.as_dict()}")
        if trace_dir is not None:
            _ingest_shard_traces(sorted(Path(trace_dir).glob("*.json")))
        return reports

    proc = None
    spawn_trace_dir = None
    try:
        if args.router:
            reports = asyncio.run(drive_router())
        elif args.spawn:
            proc, host, port, spawn_trace_dir = _spawn_server(args)
            reports = asyncio.run(drive_http(host, port))
        elif args.url:
            host, _, port_text = args.url.rpartition(":")
            host = host.removeprefix("http://") or "127.0.0.1"
            try:
                port = int(port_text)
            except ValueError:
                raise SystemExit(
                    f"--url must look like host:port, got {args.url!r}"
                )
            reports = asyncio.run(drive_http(host, port))
        else:
            reports = asyncio.run(drive_in_process())
    finally:
        if proc is not None:
            proc.terminate()
            proc.wait(timeout=30)
        if spawn_trace_dir is not None:
            _ingest_shard_traces(
                sorted(Path(spawn_trace_dir).glob("*.json"))
            )

    failures = 0
    for report in reports:
        print(report.render())
        print()
        if not report.clean:
            failures += 1
    if args.bench_json:
        sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
        from bench_to_json import append_run

        records = [
            dict(
                rec,
                engine=args.engine,
                shards=args.router or 1,
                rows_per_request=args.rows_per_request,
            )
            for report in reports
            for rec in report.records()
        ]
        label = f"loadgen-{'-'.join(patterns)}-{args.engine}"
        if args.router:
            label += f"-router{args.router}"
            if args.chaos != "none":
                label += f"-{args.chaos}"
        append_run(args.bench_json, "serve", records, label=label)
        print(f"appended {len(records)} record(s) to {args.bench_json}")
    if failures:
        print(f"FAILED: {failures} traffic pattern(s) saw errors, "
              "rejections or parity mismatches")
        return 1
    return 0


def _ingest_shard_traces(paths) -> int:
    """Merge shard subprocesses' exported Chrome traces into this
    process's buffers (one timeline: CLOCK_MONOTONIC is shared)."""
    import json

    from .obs import trace

    total = 0
    for path in paths:
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            continue  # shard died before exporting; trace what we have
        total += trace.ingest_chrome(doc)
    return total


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace [--out FILE] -- <command ...>``: run any
    subcommand with tracing enabled and export the Chrome trace."""
    from .obs import trace

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise SystemExit(
            "usage: repro trace [--out FILE] -- <command ...>"
        )
    if rest[0] == "trace":
        raise SystemExit("repro trace cannot wrap itself")
    sub_args = build_parser().parse_args(rest)
    if getattr(sub_args, "trace", ""):
        raise SystemExit(
            "pass either `repro trace` or --trace, not both"
        )
    trace.enable()
    try:
        return sub_args.func(sub_args)
    finally:
        count = trace.export_chrome(args.out)
        print(f"trace: {count} span(s) -> {args.out}", file=sys.stderr)
        _finish_obs(sub_args)  # honor an inner --metrics


def cmd_profile(args: argparse.Namespace) -> int:
    """Span-level profile of one workload: compile passes, plan
    lowering, and a batch sweep, aggregated per span name."""
    import numpy as np

    from .analysis import format_table
    from .obs import trace
    from .sim import BatchSimulator

    dag = _resolve_workload(args.workload, args.scale)
    config = _parse_config(args.config)
    trace.enable()
    trace.set_sample_every(1)  # a profile wants every kernel span
    with trace.span("profile", "cli", workload=dag.name):
        result = compile_dag(dag, config, seed=args.seed)
        plan = result.plan()
        rng = np.random.default_rng(args.seed)
        matrix = rng.uniform(0.9, 1.1, size=(args.batch, dag.num_inputs))
        sim = BatchSimulator(plan, engine=args.engine)
        batch = sim.run(matrix)
    events = trace.drain()
    wall_us = max(
        (e["dur"] for e in events if e["name"] == "profile"), default=0
    )
    agg: dict[str, list] = {}
    for e in events:
        if e["name"] == "profile":
            continue
        slot = agg.setdefault(e["name"], [e["cat"], 0, 0])
        slot[1] += 1
        slot[2] += e["dur"]
    rows = [
        (
            name,
            cat,
            count,
            round(total / 1e3, 3),
            round(total / count / 1e3, 3),
            round(100 * total / wall_us, 1) if wall_us else 0.0,
        )
        for name, (cat, count, total) in sorted(
            agg.items(), key=lambda kv: -kv[1][2]
        )
    ]
    print(
        format_table(
            ["span", "cat", "count", "total ms", "mean ms", "% wall"],
            rows,
            title=(
                f"{dag.name} @ {config}: profile over a "
                f"{batch.batch}-row sweep (engine {sim.engine}, "
                f"wall {wall_us / 1e3:.1f}ms)"
            ),
        )
    )
    if args.out:
        count = trace.export_chrome(args.out, events=events)
        print(f"trace: {count} span(s) -> {args.out}", file=sys.stderr)
    return 0


def cmd_encode(args: argparse.Namespace) -> int:
    dag = _resolve_workload(args.workload, args.scale)
    config = _parse_config(args.config)
    result = compile_dag(dag, config, seed=args.seed)
    encoded = encode_program(result.program, result.allocation.read_addrs)
    out = Path(args.output)
    out.write_bytes(encoded.data)
    print(f"{encoded.total_bits} bits "
          f"({encoded.instruction_count} instructions, "
          f"IL={encoded.widths.il}b) -> {out}")
    if args.image:
        from .runner.imageio import write_program_image

        img = Path(args.image)
        write_program_image(
            img, result.program, result.allocation.read_addrs
        )
        print(f"program image ({img.stat().st_size} bytes) -> {img}")
    return 0


def cmd_encoding_report(args: argparse.Namespace) -> int:
    """Print the synthesized instruction layouts for one design point.

    The layouts are derived from the declarative ISA spec
    (:data:`repro.arch.DPU_V2_SPEC`), not from hand-maintained width
    arithmetic; ``--json`` dumps the machine-readable descriptor.
    """
    from .arch import encoding_report, isa_to_json, synthesize_isa

    config = _parse_config(args.config)
    isa = synthesize_isa(config)
    print(encoding_report(isa, verbose=args.verbose))
    if args.json:
        out = Path(args.json)
        out.write_text(isa_to_json(isa) + "\n")
        print(f"JSON descriptor -> {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DPU-v2 reproduction: compile/run irregular DAGs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and print statistics")
    _add_common(p)
    p.add_argument(
        "--partition-threshold", type=int, default=None, metavar="N",
        help="split DAGs larger than N nodes GRAPHOPT-style and "
        "compile the partitions independently (paper uses ~20000)",
    )
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile, simulate, verify")
    _add_common(p)
    p.add_argument(
        "--batch", type=int, default=0, metavar="N",
        help="execute N random input rows through the two-phase "
        "plan/execute engine instead of the scalar reference simulator",
    )
    p.add_argument(
        "--engine", default="auto", choices=ENGINES,
        help="batch execution engine (--batch N only): step interpreter, "
        "fused super-op kernels, plan-specialized codegen, or auto "
        "(fused when the plan fits the cell cap); all are bitwise "
        "identical",
    )
    _add_cache_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("suite", help="fig. 14-style suite table")
    p.add_argument("--config", default="D3-B64-R32")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--seed", type=int, default=0)
    _add_cache_args(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("dse", help="fig. 11 design-space exploration")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    _add_campaign_args(p)
    _add_jobs_arg(p)
    _add_cache_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "sweep",
        help="fig. 11 DSE via the parallel orchestrator + artifact cache",
    )
    p.add_argument(
        "--workloads", default="", metavar="A,B,...",
        help="comma-separated Table-I workload names "
        "(default: the fig. 11 set)",
    )
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    _add_campaign_args(p)
    _add_jobs_arg(p)
    _add_cache_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "all", help="run every figure/table experiment"
    )
    p.add_argument(
        "--only", default="", metavar="A,B,...",
        help="comma-separated experiment names (see repro.runner)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="reduced-scale parameters (the regression-test goldens)",
    )
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_all)

    p = sub.add_parser(
        "fuzz",
        help="differential verification over synthetic scenarios",
    )
    p.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="number of generated scenarios to cross-check (default 200)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="master seed; (budget, seed) replays the identical campaign",
    )
    p.add_argument(
        "--families", default="", metavar="A,B,...",
        help="restrict to these generator families "
        "(default: all of repro.workloads.synth)",
    )
    p.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="where shrunk repro cases are written "
        "(default results/repro_cases/)",
    )
    p.add_argument(
        "--no-artifacts", action="store_true",
        help="report mismatches without writing repro-case files",
    )
    p.add_argument(
        "--inject-fault", default="", metavar="NAME",
        help="deliberately corrupt one executor to demo the harness "
        "(see repro.verify.FAULTS)",
    )
    p.add_argument(
        "--image-all", action="store_true",
        help="run the binary-image round-trip stage on every scenario "
        "(default: every fourth)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="hard per-scenario wall-clock budget in seconds; a "
        "wedged scenario is killed, reported as a failure, shrunk "
        "and written as a repro case (default: no limit)",
    )
    _add_campaign_args(p)
    _add_jobs_arg(p)
    _add_cache_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "campaign",
        help="status of durable fuzz/sweep campaigns (retries, "
        "reclaimed leases, quarantine)",
    )
    p.add_argument(
        "id", nargs="?", default="",
        help="campaign id to inspect (default: list all campaigns)",
    )
    p.add_argument(
        "--campaign-root", default="", metavar="DIR",
        help="override the campaign directory "
        "(default <cache dir>/campaigns)",
    )
    _add_cache_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "chaos",
        help="chaos-test the durable campaign runner: SIGKILL + "
        "resume must be byte-identical; poison tasks must quarantine",
    )
    p.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="scenarios in the kill/resume campaign (default 200)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="campaign worker processes (default 2)",
    )
    p.add_argument(
        "--kills", type=int, default=2, metavar="K",
        help="SIGKILL the coordinator at K seeded points (default 2)",
    )
    p.add_argument(
        "--kill-after", type=float, default=1.0, metavar="S",
        help="earliest kill point, seconds after launch (default 1)",
    )
    p.add_argument(
        "--kill-before", type=float, default=6.0, metavar="S",
        help="latest kill point, seconds after launch (default 6)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=30.0, metavar="S",
        help="per-scenario wall-clock budget (default 30)",
    )
    p.add_argument(
        "--poison-task", type=int, default=0, metavar="I",
        help="scenario index poisoned in the quarantine phase "
        "(default 0)",
    )
    p.add_argument(
        "--campaign-root", default="", metavar="DIR",
        help="override the campaign directory "
        "(default <cache dir>/campaigns)",
    )
    _add_cache_args(p)
    p.set_defaults(func=cmd_chaos)

    def _add_serving_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--programs", default="synth_layered", metavar="A,B,...",
            help="comma-separated suite workload names to serve "
            "(default: synth_layered)",
        )
        p.add_argument("--config", default="D3-B64-R32")
        p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--max-batch", type=int, default=64, metavar="B",
            help="micro-batch dispatch size (1 = batch-1 serving)",
        )
        p.add_argument(
            "--max-wait-ms", type=float, default=2.0, metavar="MS",
            help="max time a request waits for its batch to fill",
        )
        p.add_argument(
            "--max-queue", type=int, default=1024, metavar="N",
            help="per-program admission bound (backpressure beyond it)",
        )
        p.add_argument(
            "--workers", type=int, default=0, metavar="N",
            help="execute micro-batches on N worker processes "
            "(0: inline on the event loop)",
        )
        p.add_argument(
            "--partition-threshold", type=int, default=None, metavar="N",
            help="compile DAGs larger than N nodes via the "
            "partition-parallel path",
        )
        p.add_argument(
            "--engine", default="auto", choices=ENGINES,
            help="batch execution engine behind the plan pool "
            "(default auto: fused super-op kernels when the plan "
            "fits the cell cap); all engines are bitwise identical",
        )

    p = sub.add_parser(
        "serve",
        help="asyncio inference service with dynamic micro-batching",
    )
    _add_serving_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks a free one)",
    )
    p.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="fan requests across N shard processes (sharing the "
        "artifact cache) behind a consistent-hash router; 1 serves "
        "directly from this process",
    )
    _add_cache_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a server with seeded traffic and report latency",
    )
    _add_serving_args(p)
    p.add_argument(
        "--patterns", default="poisson", metavar="A,B,...",
        help="traffic patterns (poisson, bursty, diurnal, multi_tenant); "
        "--requests is split evenly across them",
    )
    p.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="total requests across all patterns (default 200)",
    )
    p.add_argument(
        "--rate", type=float, default=400.0, metavar="R",
        help="offered load in requests/s of schedule time",
    )
    p.add_argument(
        "--time-scale", type=float, default=1.0, metavar="X",
        help="multiply schedule time by X on replay (<1 compresses)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="verify every response bitwise against direct execution",
    )
    p.add_argument(
        "--url", default="", metavar="HOST:PORT",
        help="target a running server (default: in-process service)",
    )
    p.add_argument(
        "--spawn", action="store_true",
        help="start `repro serve` as a subprocess, drive it over HTTP, "
        "then shut it down (what the CI smoke job uses)",
    )
    p.add_argument(
        "--router", type=int, default=0, metavar="N",
        help="spawn N shard processes and drive them through the "
        "in-process consistent-hash router (client-side routing, "
        "no proxy hop); 0 disables",
    )
    p.add_argument(
        "--chaos", default="none", choices=("none", "restart", "kill"),
        help="with --router: bounce the owning shard mid-campaign — "
        "'restart' drains gracefully, 'kill' hard-kills it so the "
        "failover path must absorb the loss first",
    )
    p.add_argument(
        "--rows-per-request", type=int, default=1, metavar="R",
        help="rows carried per request (multi-row requests ride one "
        "micro-batch; throughput counts rows, not requests)",
    )
    p.add_argument(
        "--bench-json", default="", metavar="FILE",
        help="append latency records to a repro-bench-v1 trajectory "
        "file (e.g. BENCH_serve.json)",
    )
    _add_cache_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("encode", help="emit the packed binary program")
    _add_common(p)
    p.add_argument("--output", default="program.bin")
    p.add_argument(
        "--image", default="", metavar="FILE",
        help="also write a self-describing binary program image "
        "(bitstream + sidecars; loadable via repro.runner.imageio)",
    )
    p.set_defaults(func=cmd_encode)

    p = sub.add_parser(
        "encoding-report",
        help="print the spec-synthesized instruction bit layouts",
    )
    p.add_argument(
        "--config", default="D3-B64-R32",
        help="architecture point, default: the paper's min-EDP design",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="one line per bit range instead of the compact per-"
        "instruction summary",
    )
    p.add_argument(
        "--json", default="", metavar="FILE",
        help="also dump the machine-readable JSON encoding descriptor",
    )
    p.set_defaults(func=cmd_encoding_report)

    p = sub.add_parser(
        "trace",
        help="run any repro subcommand with tracing enabled and "
        "export a Chrome trace (view at https://ui.perfetto.dev)",
    )
    p.add_argument(
        "--out", default="trace.json", metavar="FILE",
        help="trace output path (default trace.json)",
    )
    p.add_argument(
        "rest", nargs=argparse.REMAINDER, metavar="-- command ...",
        help="the wrapped command, e.g. "
        "`repro trace -- loadgen --router 2 --requests 100`",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="span-level profile of one workload: compile passes, "
        "plan lowering, fused/codegen kernels, batch sweep",
    )
    _add_common(p)
    p.add_argument(
        "--batch", type=int, default=256, metavar="N",
        help="rows in the profiled batch sweep (default 256)",
    )
    p.add_argument(
        "--engine", default="auto", choices=ENGINES,
        help="batch execution engine to profile (default auto)",
    )
    p.add_argument(
        "--out", default="", metavar="FILE",
        help="also write the profile's Chrome trace JSON",
    )
    p.set_defaults(func=cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _run_with_obs(args)


if __name__ == "__main__":
    sys.exit(main())
