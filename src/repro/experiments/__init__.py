"""Per-table/figure experiment drivers (see DESIGN.md's index)."""

from . import (
    fig01_motivation,
    fig03_utilization,
    fig06_interconnect,
    fig10_conflicts,
    fig11_dse,
    fig12_edp_curves,
    fig13_breakdown,
    fig14_throughput,
    footprint,
    table1_workloads,
    table2_area_power,
    table3_comparison,
    verify_synth,
)
from .common import Measurement, measure
from .spatial import (
    UtilizationPoint,
    systolic_peak_utilization,
    tree_peak_utilization,
    utilization_sweep,
)

__all__ = [
    "measure",
    "Measurement",
    "tree_peak_utilization",
    "systolic_peak_utilization",
    "utilization_sweep",
    "UtilizationPoint",
    "fig01_motivation",
    "fig03_utilization",
    "fig06_interconnect",
    "fig10_conflicts",
    "fig11_dse",
    "fig12_edp_curves",
    "fig13_breakdown",
    "fig14_throughput",
    "table1_workloads",
    "table2_area_power",
    "table3_comparison",
    "footprint",
]
