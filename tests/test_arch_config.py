"""Unit tests for the architecture configuration."""

import pytest

from repro.arch import (
    ArchConfig,
    LARGE_CORE_CONFIG,
    MIN_EDP_CONFIG,
    MIN_ENERGY_CONFIG,
    MIN_LATENCY_CONFIG,
    dse_grid,
)
from repro.errors import ConfigError


class TestDerivedStructure:
    def test_min_edp_matches_paper(self):
        cfg = MIN_EDP_CONFIG
        assert (cfg.depth, cfg.banks, cfg.regs_per_bank) == (3, 64, 32)
        assert cfg.num_trees == 8
        assert cfg.num_pes == 56  # T * (2^D - 1)
        assert cfg.pipeline_stages == 4

    def test_paper_corner_configs(self):
        assert MIN_ENERGY_CONFIG.banks == 16
        assert MIN_LATENCY_CONFIG.regs_per_bank == 128
        assert LARGE_CORE_CONFIG.regs_per_bank == 256

    @pytest.mark.parametrize("depth,banks", [(1, 8), (2, 8), (3, 8), (3, 64)])
    def test_bank_tree_relationship(self, depth, banks):
        cfg = ArchConfig(depth=depth, banks=banks, regs_per_bank=16)
        assert cfg.num_trees * cfg.tree_inputs == banks
        assert cfg.num_pes == cfg.num_trees * (2**depth - 1)

    def test_pes_in_layer(self):
        cfg = ArchConfig(depth=3, banks=16, regs_per_bank=16)
        assert cfg.pes_in_layer(1) == 4
        assert cfg.pes_in_layer(2) == 2
        assert cfg.pes_in_layer(3) == 1

    def test_total_registers(self):
        assert MIN_EDP_CONFIG.total_registers == 64 * 32


class TestValidation:
    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigError):
            ArchConfig(depth=0, banks=8, regs_per_bank=16)

    def test_indivisible_banks_rejected(self):
        with pytest.raises(ConfigError):
            ArchConfig(depth=3, banks=12, regs_per_bank=16)

    def test_banks_smaller_than_tree_rejected(self):
        with pytest.raises(ConfigError):
            ArchConfig(depth=3, banks=4, regs_per_bank=16)

    def test_tiny_regfile_rejected(self):
        with pytest.raises(ConfigError):
            ArchConfig(depth=1, banks=2, regs_per_bank=1)

    def test_layer_out_of_range(self):
        cfg = ArchConfig(depth=2, banks=8, regs_per_bank=16)
        with pytest.raises(ConfigError):
            cfg.pes_in_layer(3)


class TestPEIndexing:
    @pytest.fixture
    def cfg(self):
        return ArchConfig(depth=3, banks=16, regs_per_bank=16)

    def test_pe_id_position_round_trip(self, cfg):
        for pe in range(cfg.num_pes):
            tree, layer, index = cfg.pe_position(pe)
            assert cfg.pe_id(tree, layer, index) == pe

    def test_layer1_operands_are_ports(self, cfg):
        (a_port, a), (b_port, b) = cfg.pe_operand_sources(0)
        assert a_port and b_port
        assert (a, b) == (0, 1)

    def test_upper_layer_operands_are_pes(self, cfg):
        root = cfg.pe_id(0, 3, 0)
        (a_port, a), (b_port, b) = cfg.pe_operand_sources(root)
        assert not a_port and not b_port
        assert cfg.pe_layer(a) == 2 and cfg.pe_layer(b) == 2

    def test_ports_under_pe_cover_subtree(self, cfg):
        root = cfg.pe_id(1, 3, 0)
        ports = cfg.ports_under_pe(root)
        assert ports == list(range(8, 16))

    def test_port_round_trip(self, cfg):
        for port in range(cfg.banks):
            tree, local = cfg.port_position(port)
            assert cfg.input_port(tree, local) == port

    def test_out_of_range_queries(self, cfg):
        with pytest.raises(ConfigError):
            cfg.pe_position(cfg.num_pes)
        with pytest.raises(ConfigError):
            cfg.input_port(99, 0)
        with pytest.raises(ConfigError):
            cfg.pe_id(0, 1, 99)


class TestGrid:
    def test_grid_has_48_points(self):
        # 3 depths x 4 banks x 4 regs = 48; all satisfy B >= 2^D.
        assert len(dse_grid()) == 48

    def test_grid_configs_all_valid(self):
        for cfg in dse_grid():
            assert cfg.num_trees >= 1

    def test_str_format(self):
        assert str(MIN_EDP_CONFIG) == "D3-B64-R32"
