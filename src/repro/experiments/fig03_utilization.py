"""Fig. 3(c): peak datapath utilization, systolic array vs PE tree."""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs import DAG, binarize
from ..runner.orchestrator import parallel_map
from ..workloads import build_workload
from .spatial import UtilizationPoint, utilization_sweep


@dataclass(frozen=True)
class UtilizationResult:
    workload: str
    points: list[UtilizationPoint]


def _point(args: tuple[DAG, int]) -> UtilizationPoint:
    bdag, n = args
    return utilization_sweep(bdag, (n,))[0]


def run(
    workload: str = "tretail",
    scale: float = 0.05,
    input_counts: tuple[int, ...] = (2, 4, 8, 16),
    jobs: int | None = None,
) -> UtilizationResult:
    dag = build_workload(workload, scale=scale)
    bdag = binarize(dag).dag
    return UtilizationResult(
        workload=workload,
        points=parallel_map(
            _point,
            [(bdag, n) for n in input_counts],
            jobs=jobs,
            desc="fig03",
        ),
    )


def render(result: UtilizationResult) -> str:
    from ..analysis import format_table

    rows = [
        (
            p.inputs,
            f"{100 * p.tree_utilization:.0f}%",
            f"{100 * p.systolic_utilization:.0f}%",
        )
        for p in result.points
    ]
    return format_table(
        ["inputs", "tree peak util", "systolic peak util"],
        rows,
        title=(
            f"fig. 3(c) — peak utilization on {result.workload} "
            "(paper: tree stays ~100%, systolic collapses)"
        ),
    )
