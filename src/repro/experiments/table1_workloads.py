"""Table I: benchmark statistics and compile times."""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..arch import ArchConfig, MIN_EDP_CONFIG
from ..compiler import compile_dag
from ..graphs import DagStats, dag_stats
from ..runner.orchestrator import parallel_map
from ..workloads import DEFAULT_SCALE, build_workload, get_spec, workload_names


@dataclass(frozen=True)
class Table1Row:
    stats: DagStats
    paper_nodes: int
    paper_longest_path: int
    compile_seconds: float

    @property
    def scale_achieved(self) -> float:
        return self.stats.nodes / self.paper_nodes


@dataclass(frozen=True)
class Table1Result:
    rows: list[Table1Row]
    scale: float


def _row(args: tuple[str, float, ArchConfig, bool]) -> Table1Row:
    name, scale, config, compile_timing = args
    spec = get_spec(name)
    dag = build_workload(name, scale=scale)
    seconds = 0.0
    if compile_timing:
        # Table I reports *compile time*, so this is a live compile by
        # construction — never a cache hit.
        t0 = time.perf_counter()
        compile_dag(dag, config, validate_input=False)
        seconds = time.perf_counter() - t0
    return Table1Row(
        stats=dag_stats(dag),
        paper_nodes=spec.paper_nodes,
        paper_longest_path=spec.paper_longest_path,
        compile_seconds=seconds,
    )


def run(
    scale: float = DEFAULT_SCALE,
    groups: tuple[str, ...] = ("pc", "sptrsv"),
    config: ArchConfig = MIN_EDP_CONFIG,
    compile_timing: bool = True,
    jobs: int | None = None,
) -> Table1Result:
    """Build Table I.

    With ``compile_timing`` the per-workload fan-out is forced serial
    so the timed compiles do not contend with each other; the numbers
    are still wall-clock, so for publishable timings run this
    experiment alone (``repro all --only table1_workloads``).
    """
    if compile_timing:
        jobs = 1
    rows = parallel_map(
        _row,
        [
            (name, scale, config, compile_timing)
            for name in workload_names(groups)
        ],
        jobs=jobs,
        desc="table1",
    )
    return Table1Result(rows=rows, scale=scale)


def render(result: Table1Result) -> str:
    from ..analysis import format_table

    rows = [
        (
            r.stats.name,
            r.stats.nodes,
            r.stats.longest_path,
            round(r.stats.avg_parallelism, 1),
            f"{r.paper_nodes / 1000:.0f}k",
            r.paper_longest_path,
            f"{r.compile_seconds:.1f}s",
        )
        for r in result.rows
    ]
    return format_table(
        [
            "workload",
            "nodes (n)",
            "longest (l)",
            "n/l",
            "paper n",
            "paper l",
            "compile",
        ],
        rows,
        title=f"Table I — workloads at scale={result.scale}",
    )
