"""Bench + reproduction of fig. 12: latency-energy trade-off curves."""

from repro.experiments import fig12_edp_curves

from conftest import publish


def test_fig12_edp_curves(benchmark):
    # fig. 12 re-reads the fig. 11 design space; a lighter sweep is
    # enough for the scatter/Pareto/iso-EDP claims asserted here.
    curves = benchmark.pedantic(
        fig12_edp_curves.run,
        kwargs={
            "workload_names": ("tretail", "bp_200"),
            "scale": 0.05,
        },
        rounds=1,
        iterations=1,
    )
    publish("fig12_edp_curves", fig12_edp_curves.render(curves))
    # Paper: latency varies more across the grid than energy.
    assert curves.latency_spread > curves.energy_spread
    assert len(curves.front) >= 2
