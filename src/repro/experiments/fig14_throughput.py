"""Fig. 14 + Table III: throughput comparison across platforms.

(a) the small suite (PC + SpTRSV) on the min-EDP DPU-v2 vs DPU-v1,
    CPU, GPU;
(b) large PCs on the 4-core DPU-v2 (L) vs SPU, CPU_SPU, CPU, GPU.

DPU-v2 numbers come from actually compiling the programs and running
them through the two-phase execution engine: each workload is lowered
once to a verified :class:`~repro.sim.plan.ExecutionPlan` and a batch
of random input rows is swept through the vectorized simulator
(``repro.sim.batch``), so the reported throughput comes from real
executions at production speed rather than a per-row interpreter.
Per-inference cycle counts are static, so the GOPS numbers are
identical to the scalar simulator's — only orders of magnitude
cheaper to produce.  The other platforms use the calibrated analytic
models (see ``repro.baselines``).  Workloads are regenerated at a
configurable scale — fixed platform overheads are compensated per
``repro.baselines.scaling`` so the published overhead-to-work ratios
are preserved.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..arch import ArchConfig, LARGE_CORE_CONFIG, MIN_EDP_CONFIG
from ..baselines import (
    CPU_SPU_MODEL,
    PlatformResult,
    SPUModel,
    scaled_cpu,
    scaled_gpu,
    scaled_models,
)
from ..graphs import DAG
from ..runner.orchestrator import parallel_map
from ..workloads import DEFAULT_SCALE, build_suite
from .common import Measurement, measure


@dataclass(frozen=True)
class WorkloadThroughput:
    workload: str
    gops: dict[str, float]  # platform -> GOPS


@dataclass(frozen=True)
class ThroughputResult:
    rows: list[WorkloadThroughput]
    platforms: tuple[str, ...]
    dpu_v2_power_w: float = 0.0
    dpu_v2_edp: float = 0.0
    baseline_edp: dict[str, float] = field(default_factory=dict)
    #: Rows/s the vectorized simulator itself sustained (host side).
    sim_rows_per_second: float = 0.0
    batch: int = 0

    def geomean(self, platform: str) -> float:
        return statistics.geometric_mean(
            max(r.gops[platform], 1e-9) for r in self.rows
        )

    def speedup_over(self, platform: str) -> float:
        return self.geomean("DPU-v2") / self.geomean(platform)


def _measure_task(args: tuple[DAG, ArchConfig, int, int]) -> Measurement:
    dag, config, seed, batch = args
    return measure(dag, config, seed=seed, batch=batch)


def run_small(
    config: ArchConfig = MIN_EDP_CONFIG,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    batch: int = 64,
    jobs: int | None = None,
) -> ThroughputResult:
    """fig. 14(a): PC + SpTRSV suite, executed via the batched engine."""
    suite = build_suite(groups=("pc", "sptrsv"), scale=scale)
    cpu, gpu, dpu1 = scaled_models(scale)
    rows: list[WorkloadThroughput] = []
    powers: list[float] = []
    edps: list[float] = []
    host_rates: list[float] = []
    base_edp: dict[str, list[float]] = {"DPU": [], "CPU": [], "GPU": []}
    measured = parallel_map(
        _measure_task,
        [(dag, config, seed, batch) for dag in suite.values()],
        jobs=jobs,
        desc="fig14a",
    )
    for (name, dag), m in zip(suite.items(), measured):
        if m.host_rows_per_second > 0:
            host_rates.append(m.host_rows_per_second)
        gops = {
            "DPU-v2": m.throughput_gops,
            "DPU": dpu1.run(dag).throughput_gops,
            "CPU": cpu.run(dag).throughput_gops,
            "GPU": gpu.run(dag).throughput_gops,
        }
        rows.append(WorkloadThroughput(workload=name, gops=gops))
        powers.append(m.energy.power_w)
        edps.append(m.energy.edp_per_op)
        base_edp["DPU"].append(dpu1.run(dag).edp)
        base_edp["CPU"].append(cpu.run(dag).edp)
        base_edp["GPU"].append(gpu.run(dag).edp)
    return ThroughputResult(
        rows=rows,
        platforms=("DPU-v2", "DPU", "CPU", "GPU"),
        dpu_v2_power_w=statistics.mean(powers),
        dpu_v2_edp=statistics.geometric_mean(edps),
        baseline_edp={
            k: statistics.geometric_mean(v) for k, v in base_edp.items()
        },
        sim_rows_per_second=(
            statistics.geometric_mean(host_rates) if host_rates else 0.0
        ),
        batch=batch,
    )


def run_large(
    config: ArchConfig = LARGE_CORE_CONFIG,
    scale: float = 0.01,
    cores: int = 4,
    seed: int = 0,
    batch: int = 16,
    jobs: int | None = None,
) -> ThroughputResult:
    """fig. 14(b): large PCs on the 4-core DPU-v2 (L) vs SPU et al.

    The paper's DPU-v2 (L) runs 4 cores in batch mode — aggregate
    throughput is ``cores x`` a single core's (each core executes an
    independent evaluation of the same static program).
    """
    suite = build_suite(groups=("large_pc",), scale=scale)
    cpu = scaled_cpu(scale)
    gpu = scaled_gpu(scale)
    cpu_spu = scaled_cpu(scale, base=CPU_SPU_MODEL)
    spu = SPUModel(cpu_model=cpu_spu)
    rows: list[WorkloadThroughput] = []
    powers: list[float] = []
    edps: list[float] = []
    host_rates: list[float] = []
    measured = parallel_map(
        _measure_task,
        [(dag, config, seed, batch) for dag in suite.values()],
        jobs=jobs,
        desc="fig14b",
    )
    for (name, dag), m in zip(suite.items(), measured):
        if m.host_rows_per_second > 0:
            host_rates.append(m.host_rows_per_second)
        gops = {
            "DPU-v2": m.throughput_gops * cores,
            "SPU": spu.run(dag).throughput_gops,
            "CPU_SPU": cpu_spu.run(dag).throughput_gops,
            "CPU": cpu.run(dag).throughput_gops,
            "GPU": gpu.run(dag).throughput_gops,
        }
        rows.append(WorkloadThroughput(workload=name, gops=gops))
        powers.append(m.energy.power_w * cores)
        edps.append(m.energy.edp_per_op / cores)
    return ThroughputResult(
        rows=rows,
        platforms=("DPU-v2", "SPU", "CPU_SPU", "CPU", "GPU"),
        dpu_v2_power_w=statistics.mean(powers),
        dpu_v2_edp=statistics.geometric_mean(edps),
        sim_rows_per_second=(
            statistics.geometric_mean(host_rates) if host_rates else 0.0
        ),
        batch=batch,
    )


def render(result: ThroughputResult, title: str) -> str:
    from ..analysis import format_table

    rows = [
        (r.workload, *(round(r.gops[p], 2) for p in result.platforms))
        for r in result.rows
    ]
    rows.append(
        ("geomean", *(round(result.geomean(p), 2) for p in result.platforms))
    )
    table = format_table(["workload", *result.platforms], rows, title=title)
    speedups = "  ".join(
        f"vs {p}: {result.speedup_over(p):.1f}x"
        for p in result.platforms
        if p != "DPU-v2"
    )
    lines = [table, f"DPU-v2 speedups (geomean): {speedups}"]
    if result.sim_rows_per_second > 0:
        lines.append(
            f"batched engine: batch {result.batch}, "
            f"{result.sim_rows_per_second:,.0f} rows/s simulated (geomean)"
        )
    return "\n".join(lines)
