"""Cone -> concrete PE/port binding within an allocated slot.

Positions are canonical (see the deviation note in
``repro.compiler.blocks``): the cone root sits at its slot's root PE,
an OpInst's left/right children go to the left/right child PEs, and a
PassInst forwards its child through operand A.  Leaves land on the
register read ports spanned by the slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch import ArchConfig, PEOp
from ..errors import MappingError
from ..graphs import OpType
from .blocks import Block, PlacedCone
from .cones import Inst, LeafInst, OpInst, PassInst


@dataclass
class BlockPlacement:
    """Hardware binding of one block.

    Attributes:
        pe_ops: Operation per active global PE id.
        port_vars: Variable consumed at each active global read port.
        node_pes: For every DAG node in the block, the PEs computing it
            (more than one when the node was replicated, fig. 9(c)).
    """

    pe_ops: dict[int, PEOp] = field(default_factory=dict)
    port_vars: dict[int, int] = field(default_factory=dict)
    node_pes: dict[int, list[int]] = field(default_factory=dict)

    def distinct_input_vars(self) -> set[int]:
        return set(self.port_vars.values())


_OP_TO_PEOP = {OpType.ADD: PEOp.ADD, OpType.MUL: PEOp.MUL}


def place_block(block: Block, config: ArchConfig) -> BlockPlacement:
    """Bind every cone of ``block`` to PEs and ports."""
    placement = BlockPlacement()
    for placed in block.placed:
        _place_cone(placed, config, placement)
    return placement


def _place_cone(
    placed: PlacedCone, config: ArchConfig, out: BlockPlacement
) -> None:
    slot = placed.slot
    height = slot.depth

    def visit(inst: Inst, depth: int, offset: int) -> None:
        layer = height - depth
        if isinstance(inst, LeafInst):
            if layer != 0:
                raise MappingError(
                    f"leaf of cone {placed.cone.sink} at layer {layer}"
                )
            port_index = slot.index * (1 << height) + offset
            port = config.input_port(slot.tree, port_index)
            prev = out.port_vars.get(port)
            if prev is not None and prev != inst.var:
                raise MappingError(
                    f"port {port} claimed by vars {prev} and {inst.var}"
                )
            out.port_vars[port] = inst.var
            return
        index = slot.index * (1 << depth) + offset
        pe = config.pe_id(slot.tree, layer, index)
        if pe in out.pe_ops:
            raise MappingError(f"PE {pe} double-booked within a block")
        if isinstance(inst, PassInst):
            out.pe_ops[pe] = PEOp.PASS_A
            visit(inst.child, depth + 1, 2 * offset)
            return
        out.pe_ops[pe] = _OP_TO_PEOP[inst.op]
        out.node_pes.setdefault(inst.node, []).append(pe)
        visit(inst.left, depth + 1, 2 * offset)
        visit(inst.right, depth + 1, 2 * offset + 1)

    visit(placed.cone.root, 0, 0)


def writer_pe(
    placement: BlockPlacement, node: int, config: ArchConfig
) -> int:
    """PE designated to write ``node``'s value to the register file.

    Among replicas, the deepest-layer PE is chosen: with the
    one-PE-per-layer output interconnect, deeper layers reach more
    banks, maximizing the mapper's freedom under constraint H.
    """
    pes = placement.node_pes.get(node)
    if not pes:
        raise MappingError(f"node {node} has no PE in this block")
    return max(pes, key=config.pe_layer)
