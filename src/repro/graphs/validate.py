"""Structural validation of DAGs.

These checks run on externally loaded graphs (``repro.graphs.io``) and
inside tests; builder-produced DAGs are valid by construction.
"""

from __future__ import annotations

from ..errors import CycleError, GraphError
from .dag import DAG
from .node import OpType
from .traversal import topological_order


def check_acyclic(dag: DAG) -> None:
    """Raise :class:`CycleError` if the graph has a cycle."""
    topological_order(dag)  # raises CycleError on failure


def check_arities(dag: DAG, binary_only: bool = False) -> None:
    """Validate node arities.

    Args:
        binary_only: Additionally require every arithmetic node to have
            exactly two inputs (the compiler's post-binarization
            invariant).
    """
    for node in dag.nodes():
        op = dag.op(node)
        fan_in = dag.in_degree(node)
        if op is OpType.INPUT and fan_in != 0:
            raise GraphError(f"input node {node} has {fan_in} predecessors")
        if op is not OpType.INPUT:
            if fan_in == 0:
                raise GraphError(f"arithmetic node {node} has no inputs")
            if binary_only and fan_in != 2:
                raise GraphError(
                    f"node {node} has fan-in {fan_in}; expected 2"
                )


def check_connected_to_outputs(dag: DAG) -> None:
    """Raise if some node cannot reach any output (dead computation).

    Outputs are *arithmetic* sinks; an input leaf with no consumers is
    dead by definition (it would be loaded and never read).
    """
    alive = {
        n for n in dag.sinks() if dag.op(n) is not OpType.INPUT
    }
    stack = list(alive)
    while stack:
        node = stack.pop()
        for p in dag.predecessors(node):
            if p not in alive:
                alive.add(p)
                stack.append(p)
    dead = [n for n in dag.nodes() if n not in alive]
    if dead:
        raise GraphError(
            f"{len(dead)} node(s) feed no output, e.g. node {dead[0]}"
        )


def validate(dag: DAG, binary_only: bool = False) -> None:
    """Run all structural checks; raises on the first failure."""
    check_arities(dag, binary_only=binary_only)
    check_acyclic(dag)
    check_connected_to_outputs(dag)
