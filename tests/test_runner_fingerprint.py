"""Property tests for the content-address fingerprints.

The cache-key contract (ISSUE 2): stable under DAG node reordering,
changed by any structural or configuration mutation — no false cache
hits.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ArchConfig, Topology
from repro.graphs import DAG, OpType
from repro.runner.fingerprint import (
    compile_key,
    config_fingerprint,
    dag_fingerprint,
    node_digests,
)
from repro.testing import make_random_dag, permute_dag

CONFIG = ArchConfig(depth=2, banks=8, regs_per_bank=16)


def _key(dag: DAG, config: ArchConfig = CONFIG, **kw) -> str:
    defaults = dict(
        topology=Topology.OUTPUT_PER_LAYER,
        seed=0,
        mapping_strategy="conflict_aware",
    )
    defaults.update(kw)
    return compile_key(dag, config, **defaults)


def _permutation(rng: random.Random, n: int) -> list[int]:
    perm = list(range(n))
    rng.shuffle(perm)
    return perm


dags = st.builds(
    make_random_dag,
    seed=st.integers(0, 10_000),
    num_leaves=st.integers(2, 10),
    num_ops=st.integers(5, 60),
    max_fan_in=st.integers(2, 4),
)


class TestPermutationInvariance:
    @given(dag=dags, perm_seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_stable_under_reordering(self, dag, perm_seed):
        perm = _permutation(random.Random(perm_seed), dag.num_nodes)
        assert dag_fingerprint(dag) == dag_fingerprint(permute_dag(dag, perm))

    @given(dag=dags, perm_seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_compile_key_stable_under_reordering(self, dag, perm_seed):
        perm = _permutation(random.Random(perm_seed), dag.num_nodes)
        assert _key(dag) == _key(permute_dag(dag, perm))

    @given(dag=dags, perm_seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_node_digests_track_the_permutation(self, dag, perm_seed):
        perm = _permutation(random.Random(perm_seed), dag.num_nodes)
        permuted = permute_dag(dag, perm)
        original = node_digests(dag)
        renumbered = node_digests(permuted)
        for old, new in enumerate(perm):
            assert original[old] == renumbered[new]


class TestStructuralMutations:
    @given(dag=dags, node_seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_flipping_one_op_changes_fingerprint(self, dag, node_seed):
        rng = random.Random(node_seed)
        arith = [
            n for n in dag.nodes() if dag.op(n) is not OpType.INPUT
        ]
        victim = rng.choice(arith)
        ops = [dag.op(n) for n in dag.nodes()]
        ops[victim] = (
            OpType.MUL if ops[victim] is OpType.ADD else OpType.ADD
        )
        mutated = DAG(
            ops,
            [dag.predecessors(n) for n in dag.nodes()],
            input_slots=[
                dag.input_slot(n) for n in dag.nodes()
                if dag.op(n) is OpType.INPUT
            ],
            name=dag.name,
        )
        assert dag_fingerprint(dag) != dag_fingerprint(mutated)

    @given(dag=dags)
    @settings(max_examples=40, deadline=None)
    def test_appending_a_node_changes_fingerprint(self, dag):
        ops = [dag.op(n) for n in dag.nodes()] + [OpType.MUL]
        preds = [dag.predecessors(n) for n in dag.nodes()]
        preds.append((0, dag.num_nodes - 1))
        mutated = DAG(ops, preds, name=dag.name)
        assert dag_fingerprint(dag) != dag_fingerprint(mutated)

    def test_rewiring_between_duplicate_cones_changes_fingerprint(self):
        # p and q compute the *same* value (duplicate cones); moving a
        # consumer from p to q changes fan-out only.  The downward
        # digest pass must still catch it — a cache hit here could
        # return a program with different conflict/copy stats.
        def build(use_q: bool) -> DAG:
            ops = [
                OpType.INPUT,  # 0: x0
                OpType.INPUT,  # 1: x1
                OpType.ADD,    # 2: p = x0 + x1
                OpType.ADD,    # 3: q = x0 + x1 (duplicate)
                OpType.MUL,    # 4: reads p
                OpType.MUL,    # 5: reads p or q
            ]
            preds = [
                (), (), (0, 1), (0, 1), (2, 2), (3, 3) if use_q else (2, 2),
            ]
            return DAG(ops, preds, name="dup")

        assert dag_fingerprint(build(False)) != dag_fingerprint(build(True))

    def test_swapping_input_slots_changes_fingerprint(self):
        ops = [OpType.INPUT, OpType.INPUT, OpType.ADD, OpType.MUL]
        preds = [(), (), (0, 1), (2, 0)]
        a = DAG(ops, preds, input_slots=[0, 1])
        b = DAG(ops, preds, input_slots=[1, 0])
        assert dag_fingerprint(a) != dag_fingerprint(b)


class TestConfigMutations:
    @pytest.mark.parametrize(
        "mutation",
        [
            {"depth": 3, "banks": 16},
            {"banks": 16},
            {"regs_per_bank": 32},
            {"data_mem_rows": 1024},
            {"frequency_hz": 500e6},
            {"reorder_window": 100},
        ],
    )
    def test_any_config_field_changes_key(self, random_dag, mutation):
        mutated = dataclasses.replace(CONFIG, **mutation)
        assert config_fingerprint(CONFIG) != config_fingerprint(mutated)
        assert _key(random_dag) != _key(random_dag, config=mutated)

    def test_compile_options_change_key(self, random_dag):
        base = _key(random_dag)
        assert base != _key(random_dag, seed=1)
        assert base != _key(random_dag, mapping_strategy="random")
        assert base != _key(random_dag, topology=Topology.OUTPUT_SINGLE)
        assert base != _key(
            random_dag, keep_digests=(node_digests(random_dag)[-1],)
        )
