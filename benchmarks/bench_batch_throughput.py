"""Bench: scalar interpreter vs the two-phase batched engine.

Measures rows/sec for both execution paths on fig. 14 workloads and
records the speedup, so the batched engine's gain lands in the bench
trajectory.  The acceptance bar is >= 10x at batch 256; in practice
the vectorized sweep lands orders of magnitude above it.
"""

import time

import numpy as np

from repro.arch import MIN_EDP_CONFIG
from repro.compiler import compile_dag
from repro.sim import BatchSimulator, run_program
from repro.workloads import build_workload

from conftest import publish

BATCH = 256
SCALAR_ROWS = 4  # scalar rows timed (each is ~interpreter-slow)
WORKLOADS = ("tretail", "bp_200")


def _format_rows(rows):
    from repro.analysis import format_table

    return format_table(
        ["workload", "batch", "scalar rows/s", "batched rows/s", "speedup"],
        rows,
        title=f"scalar vs batched engine @ batch {BATCH}",
    )


def _measure_workload(name: str):
    dag = build_workload(name, scale=0.05)
    result = compile_dag(dag, MIN_EDP_CONFIG, validate_input=False)
    plan = result.plan()
    rng = np.random.default_rng(0)
    matrix = rng.uniform(0.9, 1.1, size=(BATCH, dag.num_inputs))

    engine = BatchSimulator(plan)
    batch = engine.run(matrix)  # warm
    batch = engine.run(matrix)

    t0 = time.perf_counter()
    for row in range(SCALAR_ROWS):
        run_program(result.program, list(matrix[row]))
    scalar_seconds_per_row = (time.perf_counter() - t0) / SCALAR_ROWS

    scalar_rows_s = 1.0 / scalar_seconds_per_row
    batched_rows_s = batch.host_rows_per_second
    return (
        name,
        BATCH,
        round(scalar_rows_s, 1),
        round(batched_rows_s, 1),
        round(batched_rows_s / scalar_rows_s, 1),
    )


def test_batched_engine_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure_workload(name) for name in WORKLOADS],
        rounds=1,
        iterations=1,
    )
    publish("bench_batch_throughput", _format_rows(rows))
    for row in rows:
        assert row[-1] >= 10.0, f"{row[0]}: speedup {row[-1]}x < 10x"


if __name__ == "__main__":
    print(_format_rows([_measure_workload(name) for name in WORKLOADS]))
