"""Shared fixtures for the test suite.

The DAG generators and verification helpers live in the importable
:mod:`repro.testing` module (not here) so that both this conftest and
the benchmark harness's conftest can use them without the two
``conftest`` module names colliding on ``sys.path``.
"""

from __future__ import annotations

import pytest

from repro.arch import ArchConfig
from repro.graphs import DAG
from repro.runner import cache as runner_cache
from repro.testing import make_chain_dag, make_random_dag, make_wide_dag


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    """Give every test a private artifact cache under its tmp dir.

    Keeps the suite dogfooding the content-addressed cache while
    guaranteeing no state leaks between tests (or into the user's
    ``~/.cache``).  Tests that need a specific cache call
    ``configure_cache`` themselves, which overrides this default.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setattr(runner_cache, "_default_cache", None)
    yield
    runner_cache._default_cache = None


@pytest.fixture
def tiny_config() -> ArchConfig:
    return ArchConfig(depth=2, banks=8, regs_per_bank=16)


@pytest.fixture
def small_config() -> ArchConfig:
    return ArchConfig(depth=3, banks=16, regs_per_bank=32)


@pytest.fixture
def spilly_config() -> ArchConfig:
    """Configuration small enough to force register spilling."""
    return ArchConfig(depth=2, banks=8, regs_per_bank=4)


@pytest.fixture
def random_dag() -> DAG:
    return make_random_dag(seed=11)


@pytest.fixture
def chain_dag() -> DAG:
    return make_chain_dag()


@pytest.fixture
def wide_dag() -> DAG:
    return make_wide_dag()
