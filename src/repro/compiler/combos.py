"""Slot management: packing cones of mixed depths into PE trees.

Fig. 9(d) of the paper shows that a depth-D tree can host several
smaller subgraphs at once — e.g. for D=3 the valid depth combinations
are [3], [2,2], [2,1,1], [1,1,1,1] and their partial variants.  We
manage this with classic buddy allocation over subtree *slots*: a slot
of depth ``d`` rooted at (layer ``d``, index ``k``) can either host a
cone of height ``d`` or split into its two depth-``d-1`` children
(sacrificing its root PE).

``possible_depth_combinations`` enumerates the fig. 9(d) combinations
explicitly; the allocator realizes exactly that set (tested for
equivalence), while also giving concrete positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import CompileError


@lru_cache(maxsize=None)
def _tree_combos(depth: int) -> frozenset[tuple[int, ...]]:
    """All full-occupancy depth multisets one depth-``depth`` tree hosts."""
    if depth == 1:
        return frozenset({(1,)})
    combos: set[tuple[int, ...]] = {(depth,)}
    child = _tree_combos(depth - 1)
    for a in child:
        for b in child:
            combos.add(tuple(sorted(a + b, reverse=True)))
    return frozenset(combos)


def possible_depth_combinations(depth: int, trees: int = 1) -> list[tuple[int, ...]]:
    """Cone-depth combinations fillable into ``trees`` trees of ``depth``.

    Includes partial fillings (prefixes), since a block need not use
    every PE.  Matches ``possible_depth_combinations(D, T)`` of
    Algorithm 1.
    """
    if depth < 1 or trees < 1:
        raise CompileError("depth and trees must be >= 1")
    per_tree = _tree_combos(depth)
    full: set[tuple[int, ...]] = set()
    acc: set[tuple[int, ...]] = {()}
    for _ in range(trees):
        acc = {
            tuple(sorted(a + c, reverse=True)) for a in acc for c in per_tree
        }
    full = acc
    # Partial fillings: any sub-multiset of a full combination.
    out: set[tuple[int, ...]] = set()
    for combo in full:
        _sub_multisets(combo, 0, [], out)
    out.discard(())
    return sorted(out, key=lambda c: (-len(c), c), reverse=False)


def _sub_multisets(
    combo: tuple[int, ...], i: int, cur: list[int], out: set[tuple[int, ...]]
) -> None:
    if i == len(combo):
        out.add(tuple(cur))
        return
    _sub_multisets(combo, i + 1, cur, out)
    cur.append(combo[i])
    _sub_multisets(combo, i + 1, cur, out)
    cur.pop()


@dataclass(frozen=True)
class Slot:
    """A concrete subtree slot: root PE at (tree, layer=depth, index)."""

    tree: int
    depth: int
    index: int


class SlotAllocator:
    """Buddy allocator over the PE-tree slots of one block.

    Splits alternate between taking the left and right child so that,
    over many partially filled blocks, cones spread evenly across the
    banks under each tree — a systematic left bias would concentrate
    register traffic on the low banks (hurting Algorithm 2's balance
    objective J before it even runs).

    Args:
        depth: Tree depth D.
        trees: Number of trees T.
        phase: Starting parity of the split direction; callers rotate
            it per block.
    """

    def __init__(self, depth: int, trees: int, phase: int = 0) -> None:
        if depth < 1 or trees < 1:
            raise CompileError("depth and trees must be >= 1")
        self.depth = depth
        self.trees = trees
        self._flip = phase % 2
        # free[d] = list of (tree, index) slots of depth d
        self._free: list[list[tuple[int, int]]] = [
            [] for _ in range(depth + 1)
        ]
        for t in range(trees):
            self._free[depth].append((t, 0))
        if phase % 2:
            self._free[depth].reverse()

    def max_free_depth(self) -> int:
        """Deepest slot depth currently available (0 if none)."""
        for d in range(self.depth, 0, -1):
            if self._free[d]:
                return d
        return 0

    def can_place(self, height: int) -> bool:
        return 1 <= height <= self.max_free_depth()

    def place(self, height: int) -> Slot:
        """Allocate a slot for a cone of ``height``; splits as needed.

        Splitting takes the *smallest* adequate free slot first (best
        fit), so deep slots are preserved for deep cones.

        Raises:
            CompileError: If nothing fits.
        """
        if height < 1:
            raise CompileError(f"cone height must be >= 1, got {height}")
        for d in range(height, self.depth + 1):
            if self._free[d]:
                tree, index = self._free[d].pop()
                # Split down to the requested height, freeing siblings;
                # alternate which child is taken to avoid bank bias.
                while d > height:
                    d -= 1
                    self._flip ^= 1
                    taken = 2 * index + self._flip
                    freed = 2 * index + (self._flip ^ 1)
                    self._free[d].append((tree, freed))
                    index = taken
                return Slot(tree=tree, depth=height, index=index)
        raise CompileError(f"no free slot of depth >= {height}")

    def free_pe_capacity(self) -> int:
        """PEs still available in free slots (for fill heuristics)."""
        return sum(
            len(slots) * ((1 << d) - 1)
            for d, slots in enumerate(self._free)
        )
