"""Bench + reproduction of Table II: area/power breakdown."""

from repro.experiments import table2_area_power

from conftest import publish


def test_table2_area_power(benchmark):
    result = benchmark.pedantic(
        table2_area_power.run, rounds=1, iterations=1
    )
    publish("table2_area_power", table2_area_power.render(result))
    # Area model is anchored: total must be ~3.2mm2.
    assert abs(result.area.total_mm2 - 3.21) < 0.1
    # Power within the paper's order of magnitude.
    assert (
        0.2 * result.paper_total_power_mw
        < result.total_power_mw
        < 5 * result.paper_total_power_mw
    )
    # Memories dominate the floorplan (Table II: ~75%).
    area = result.area
    assert (area.instr_memory + area.data_memory) / area.total_mm2 > 0.6
