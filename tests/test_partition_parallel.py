"""Partition-parallel compile parity (the compile_dag fast path for
very large DAGs).

``compile_dag(dag, cfg, partition_threshold=N, jobs=J)`` must produce
a stitched pipeline that executes **bitwise identically** to the
monolithic compilation, whatever the partition size or worker count:

* scalar stitched execution == monolithic scalar simulator ==
  reference interpreter, per sink/boundary value, bit for bit;
* batch stitched execution == scalar, every row;
* ``jobs=1`` and ``jobs=2`` produce identical piece programs
  (parallel_map's order-preserving merge + per-piece determinism);
* the differential oracle's partitioned stage accepts real scenarios
  and its injected boundary fault is caught and shrunk.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ArchConfig, MIN_EDP_CONFIG
from repro.compiler import (
    CompileResult,
    PartitionedCompileResult,
    compile_dag,
)
from repro.graphs import OpType, binarize
from repro.sim import evaluate_dag, run_program
from repro.verify import FAULTS, diff_check_dag
from repro.workloads.synth import SYNTH_FAMILIES, generate_synth

CFG = ArchConfig(depth=2, banks=16, regs_per_bank=16)


def _inputs(dag, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.9, 1.1, max(dag.num_inputs, 1)).tolist()


def _sink_values(dag, result, inputs):
    """Monolithic scalar execution, sink -> value."""
    sim = run_program(result.program, inputs)
    return {
        s: sim.values[result.node_map[s]]
        for s in dag.sinks()
        if dag.op(s) is not OpType.INPUT
    }


class TestPartitionedParity:
    @pytest.mark.parametrize("family", ["layered", "diamond", "reuse",
                                        "disconnected", "near_chain"])
    @pytest.mark.parametrize("threshold", [7, 40])
    def test_stitched_matches_monolithic_bitwise(self, family, threshold):
        dag = generate_synth(family, 150, seed=21)
        inputs = _inputs(dag, seed=1)
        mono = compile_dag(dag, CFG, validate_input=False)
        part = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=threshold
        )
        assert isinstance(part, PartitionedCompileResult)
        assert part.num_pieces >= 2
        stitched = part.run(inputs)
        for sink, value in _sink_values(dag, mono, inputs).items():
            assert stitched[sink] == value  # bitwise

    def test_boundary_values_match_reference(self):
        dag = generate_synth("layered", 300, seed=5)
        inputs = _inputs(dag, seed=2)
        part = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=60
        )
        mono = compile_dag(dag, CFG, validate_input=False)
        golden = evaluate_dag(binarize(dag).dag, inputs)
        stitched = part.run(inputs)
        # every extracted value (boundaries included) is bit-exact
        assert len(stitched) > len(dag.sinks())
        for node, value in stitched.items():
            assert value == golden[mono.node_map[node]]

    def test_jobs_parity_bitwise(self):
        dag = generate_synth("layered", 400, seed=31)
        kwargs = dict(validate_input=False, partition_threshold=80)
        serial = compile_dag(dag, CFG, jobs=1, **kwargs)
        parallel = compile_dag(dag, CFG, jobs=2, **kwargs)
        assert serial.num_pieces == parallel.num_pieces
        for a, b in zip(serial.pieces, parallel.pieces):
            assert a.ext_sources == b.ext_sources
            assert a.extract == b.extract
            assert (
                a.result.program.instructions
                == b.result.program.instructions
            )
            assert a.result.node_map == b.result.node_map
        inputs = _inputs(dag, seed=3)
        assert serial.run(inputs) == parallel.run(inputs)

    def test_batch_engine_matches_scalar_rows(self):
        dag = generate_synth("diamond", 200, seed=8)
        part = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=50
        )
        rng = np.random.default_rng(9)
        matrix = rng.uniform(0.9, 1.1, (3, max(dag.num_inputs, 1)))
        batched = part.run_batch(matrix)
        for row in range(3):
            scalar = part.run(matrix[row].tolist())
            for node, value in scalar.items():
                assert float(batched[node][row]) == value

    def test_keep_vars_survive_partitioning(self):
        dag = generate_synth("layered", 120, seed=13)
        keep = [
            v for v in dag.nodes() if dag.op(v) is not OpType.INPUT
        ][: 10]
        part = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=30,
            keep=frozenset(keep),
        )
        inputs = _inputs(dag, seed=4)
        mono = compile_dag(
            dag, CFG, validate_input=False, keep=frozenset(keep)
        )
        golden = evaluate_dag(binarize(dag).dag, inputs)
        stitched = part.run(inputs)
        for v in keep:
            assert stitched[v] == golden[mono.node_map[v]]

    def test_threshold_larger_than_dag_stays_monolithic(self):
        dag = generate_synth("wide", 60, seed=2)
        result = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=10_000
        )
        assert isinstance(result, CompileResult)

    def test_trace_occupancy_rejected_on_partitioned_path(self):
        from repro.errors import CompileError

        dag = generate_synth("layered", 120, seed=1)
        with pytest.raises(CompileError, match="trace_occupancy"):
            compile_dag(
                dag, CFG, validate_input=False,
                partition_threshold=30, trace_occupancy=True,
            )

    def test_step_seconds_wall_vs_piece_split(self):
        dag = generate_synth("layered", 200, seed=23)
        part = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=40
        )
        steps = part.stats.step_seconds
        wall = [k for k in steps if not k.startswith("piece:")]
        assert set(wall) == {"partition", "induce", "compile_pieces"}
        # driver wall steps must not exceed the total compile time
        assert sum(steps[k] for k in wall) <= part.stats.compile_seconds
        assert any(k.startswith("piece:") for k in steps)

    def test_stats_aggregate(self):
        dag = generate_synth("layered", 200, seed=17)
        part = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=40
        )
        s = part.stats
        assert s.pieces == part.num_pieces
        assert s.num_blocks == sum(
            p.result.stats.num_blocks for p in part.pieces
        )
        assert s.exec_instructions == s.num_blocks
        assert part.total_instructions == sum(
            p.result.total_instructions for p in part.pieces
        )
        assert 0.0 < s.pe_utilization <= 1.0
        assert "partition" in s.step_seconds
        assert "compile_pieces" in s.step_seconds

    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(sorted(SYNTH_FAMILIES)),
        n=st.integers(min_value=12, max_value=140),
        seed=st.integers(min_value=0, max_value=2**16),
        denom=st.integers(min_value=2, max_value=6),
    )
    def test_property_partitioned_equals_monolithic(
        self, family, n, seed, denom
    ):
        from repro.errors import SpillError

        dag = generate_synth(family, n, seed=seed)
        threshold = max(1, dag.num_nodes // denom)
        inputs = _inputs(dag, seed=seed)
        try:
            mono = compile_dag(dag, MIN_EDP_CONFIG, validate_input=False)
            part = compile_dag(
                dag,
                MIN_EDP_CONFIG,
                validate_input=False,
                partition_threshold=threshold,
            )
        except SpillError:
            return  # config cannot fit — not a parity question
        stitched = part.run(inputs)
        for sink, value in _sink_values(dag, mono, inputs).items():
            assert stitched[sink] == value


class TestOracleIntegration:
    def test_oracle_partitioned_stage_passes(self):
        dag = generate_synth("layered", 160, seed=3)
        report = diff_check_dag(
            dag, CFG, value_seed=7, batch=2, partition_threshold=40
        )
        assert report.ok, report.mismatch

    def test_partition_boundary_fault_is_registered(self):
        assert FAULTS["partition_boundary"] == "partitioned-vs-reference"

    def test_partition_boundary_fault_caught(self):
        dag = generate_synth("layered", 80, seed=4)
        report = diff_check_dag(
            dag, CFG, value_seed=5, batch=2, fault="partition_boundary"
        )
        assert not report.ok
        assert report.mismatch.stage == "partitioned-vs-reference"

    def test_fuzz_campaign_includes_partitioned_scenarios(self):
        from repro.verify.fuzz import make_scenarios

        scenarios = make_scenarios(40, seed=0)
        partitioned = [
            s for s in scenarios if s.partition_threshold is not None
        ]
        assert len(partitioned) >= 5
        for s in partitioned:
            assert s.partition_threshold >= 1
