"""Datapath <-> register-bank interconnect topologies (fig. 6).

The paper explores four options for connecting ``B`` read ports to the
``B`` tree inputs and the ``#PE`` outputs to ``B`` write ports:

* (a) ``CROSSBAR_BOTH``   — full crossbars on both sides (fewest
  conflicts, most expensive);
* (b) ``OUTPUT_PER_LAYER`` — input crossbar; each bank's write port is
  connected to exactly one PE *per layer* (the selected design: 1.4×
  the conflicts of (a) for 9% less power);
* (c) ``OUTPUT_SINGLE``   — input crossbar; each bank writable from
  exactly one PE (19× conflicts);
* (d) ``ONE_TO_ONE``      — no crossbars at all (not evaluated; worse
  than (c)).

The *input* side is a crossbar for (a)-(c): any read port can source
any bank, which is what decouples PE mapping from input bank mapping
during compilation (§IV-B "Impact of the crossbar").

Output connectivity for (b) follows the natural alignment: bank
``b = t * 2^D + p`` is written by, at each layer ``l``, the PE of tree
``t`` that sits directly above input port ``p`` (index ``p >> l``).
Each layer-``l`` PE therefore serves ``2^l`` banks.
"""

from __future__ import annotations

import enum

from ..errors import ConfigError
from .config import ArchConfig


class Topology(enum.Enum):
    """Interconnect design points of fig. 6 (a)-(d)."""

    CROSSBAR_BOTH = "crossbar_both"
    OUTPUT_PER_LAYER = "output_per_layer"
    OUTPUT_SINGLE = "output_single"
    ONE_TO_ONE = "one_to_one"

    @property
    def has_input_crossbar(self) -> bool:
        return self is not Topology.ONE_TO_ONE


#: The topology chosen by the paper (design (b) of fig. 6).
DEFAULT_TOPOLOGY = Topology.OUTPUT_PER_LAYER


class Interconnect:
    """Connectivity oracle for a (config, topology) pair.

    The compiler's constraint H ("the bank should be writable from that
    PE") is answered by :meth:`banks_writable_from` /
    :meth:`pes_writing_to`; the simulator uses the same tables so
    hardware and compiler can never disagree.
    """

    def __init__(
        self, config: ArchConfig, topology: Topology = DEFAULT_TOPOLOGY
    ) -> None:
        self.config = config
        self.topology = topology
        self._bank_to_pes: list[tuple[int, ...]] = []
        self._pe_to_banks: list[list[int]] = [
            [] for _ in range(config.num_pes)
        ]
        self._build_tables()

    def _build_tables(self) -> None:
        cfg = self.config
        if self.topology is Topology.CROSSBAR_BOTH:
            all_pes = tuple(range(cfg.num_pes))
            self._bank_to_pes = [all_pes for _ in range(cfg.banks)]
        elif self.topology is Topology.OUTPUT_PER_LAYER:
            for bank in range(cfg.banks):
                tree, port = cfg.port_position(bank)
                pes = tuple(
                    cfg.pe_id(tree, layer, port >> layer)
                    for layer in range(1, cfg.depth + 1)
                )
                self._bank_to_pes.append(pes)
        elif self.topology in (Topology.OUTPUT_SINGLE, Topology.ONE_TO_ONE):
            # Each bank writable from exactly one PE; distribute banks
            # round-robin over PEs so every PE can write somewhere.
            for bank in range(cfg.banks):
                self._bank_to_pes.append((bank % cfg.num_pes,))
        else:  # pragma: no cover - exhaustive enum
            raise ConfigError(f"unknown topology {self.topology}")
        for bank, pes in enumerate(self._bank_to_pes):
            for pe in pes:
                self._pe_to_banks[pe].append(bank)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pes_writing_to(self, bank: int) -> tuple[int, ...]:
        """PE ids whose output is wired to ``bank``'s write port."""
        return self._bank_to_pes[bank]

    def banks_writable_from(self, pe: int) -> tuple[int, ...]:
        """Banks reachable from ``pe``'s output."""
        return tuple(self._pe_to_banks[pe])

    def can_write(self, pe: int, bank: int) -> bool:
        """Constraint-H check."""
        return pe in self._bank_to_pes[bank]

    def banks_readable_by_port(self, port: int) -> tuple[int, ...]:
        """Banks a global input port can source (crossbar: all)."""
        if self.topology.has_input_crossbar:
            return tuple(range(self.config.banks))
        return (port,)

    def can_read(self, port: int, bank: int) -> bool:
        if self.topology.has_input_crossbar:
            return True
        return port == bank

    def write_mux_options(self, bank: int) -> int:
        """Mux inputs at a bank's write port (for encoding widths).

        Counts the connected PE outputs plus the load path and the copy
        path (the input-crossbar loopback of fig. 5(c)).
        """
        return len(self._bank_to_pes[bank]) + 2
