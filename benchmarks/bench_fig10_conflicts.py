"""Bench + reproduction of fig. 10(b)-(d): mapping quality."""

from repro.experiments import fig10_conflicts

from conftest import publish


def test_fig10b_conflict_aware_vs_random(benchmark):
    # The paper demonstrates 10(b) on a SpTRSV-style workload where
    # Algorithm 2 gets near zero conflicts; bp_200 is our analogue
    # (PC workloads with dense cross-block fan-out land at 6-20x).
    result = benchmark.pedantic(
        fig10_conflicts.run_conflicts,
        kwargs={"workload": "bp_200", "scale": 0.05},
        rounds=1,
        iterations=1,
    )
    publish("fig10b_conflicts", fig10_conflicts.render_conflicts(result))
    # Paper: 292x; the shape claim is a two-orders-of-magnitude gap.
    assert result.improvement > 50


def test_fig10cd_occupancy(benchmark):
    result = benchmark.pedantic(
        fig10_conflicts.run_occupancy,
        kwargs={"workload": "msweb", "scale": 0.05, "regs_per_bank": 8},
        rounds=1,
        iterations=1,
    )
    publish("fig10cd_occupancy", fig10_conflicts.render_occupancy(result))
    assert result.with_spill.global_peak <= 8
    # Balance (objective J): time-averaged max/mean close to 1.
    assert result.without_spill.balance < 2.0
