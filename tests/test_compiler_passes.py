"""Unit tests for schedule construction, liveness, reorder, spill, regalloc."""

import pytest

from repro.arch import (
    ArchConfig,
    CopyInstr,
    ExecInstr,
    Interconnect,
    LoadInstr,
    NopInstr,
    StoreInstr,
    consumed_vars,
    produced_vars,
)
from repro.compiler import (
    allocate_addresses,
    analyze_residences,
    annotate_liveness,
    build_dependencies,
    build_schedule,
    decompose,
    insert_spills,
    map_banks,
    max_live_per_bank,
    reorder,
    verify_hazard_free,
)
from repro.errors import CompileError, ScheduleError
from repro.graphs import OpType, binarize
from repro.testing import make_chain_dag, make_random_dag


@pytest.fixture(scope="module")
def cfg():
    return ArchConfig(depth=2, banks=8, regs_per_bank=16)


@pytest.fixture(scope="module")
def pipeline(cfg):
    """Run steps 1-2.5 once; several test classes poke at the result."""
    bdag = binarize(make_random_dag(61, num_ops=150)).dag
    decomp = decompose(bdag, cfg)
    mapping = map_banks(decomp, Interconnect(cfg), seed=2)
    schedule = build_schedule(decomp, mapping)
    return decomp, mapping, schedule


class TestSchedule:
    def test_one_exec_per_block(self, pipeline):
        decomp, _, schedule = pipeline
        execs = [
            i for i in schedule.instructions if isinstance(i, ExecInstr)
        ]
        assert len(execs) == decomp.num_blocks

    def test_exec_reads_have_distinct_banks(self, pipeline):
        _, _, schedule = pipeline
        for instr in schedule.instructions:
            if isinstance(instr, ExecInstr):
                banks = [b for b, _ in instr.bank_reads]
                assert len(banks) == len(set(banks))

    def test_copy_port_limits(self, pipeline):
        _, _, schedule = pipeline
        for instr in schedule.instructions:
            if isinstance(instr, CopyInstr):
                srcs = [m.src_bank for m in instr.moves]
                dsts = [m.dst_bank for m in instr.moves]
                assert len(set(srcs)) == len(srcs)
                assert len(set(dsts)) == len(dsts)

    def test_every_external_input_loaded_once(self, pipeline):
        decomp, _, schedule = pipeline
        loaded = [
            var
            for instr in schedule.instructions
            if isinstance(instr, LoadInstr)
            for _, var in instr.dests
        ]
        leaves_used = {
            v
            for b in decomp.blocks
            for v in b.input_vars
            if decomp.dag.op(v) is OpType.INPUT
        }
        assert sorted(loaded) == sorted(leaves_used)

    def test_input_layout_lane_equals_bank(self, pipeline):
        _, mapping, schedule = pipeline
        for var, (row, bank) in schedule.input_layout.items():
            assert mapping.bank_of[var] == bank

    def test_all_sinks_stored(self, pipeline):
        decomp, _, schedule = pipeline
        sinks = {
            n
            for n in decomp.dag.nodes()
            if not decomp.dag.successors(n)
            and decomp.dag.op(n) is not OpType.INPUT
        }
        assert set(schedule.output_layout) == sinks

    def test_conflict_copies_counted(self, pipeline):
        _, _, schedule = pipeline
        moves = sum(
            len(i.moves)
            for i in schedule.instructions
            if isinstance(i, CopyInstr)
        )
        assert moves == schedule.stats.conflict_copies


class TestLiveness:
    def test_every_residence_read(self, pipeline):
        _, _, schedule = pipeline
        flagged = annotate_liveness(schedule.instructions)
        for res in analyze_residences(flagged):
            assert res.reads

    def test_exactly_one_free_per_residence(self, pipeline):
        _, _, schedule = pipeline
        flagged = annotate_liveness(schedule.instructions)
        residences = analyze_residences(flagged)
        freed = set()
        for idx, instr in enumerate(flagged):
            for bank in instr.valid_rst:
                freed.add((idx, bank))
        for res in residences:
            assert (res.reads[-1], res.bank) in freed

    def test_max_live_positive(self, pipeline, cfg):
        _, _, schedule = pipeline
        flagged = annotate_liveness(schedule.instructions)
        peaks = max_live_per_bank(flagged, cfg.banks)
        assert any(p > 0 for p in peaks)

    def test_read_without_write_detected(self):
        instr = StoreInstr(row=0, slots=())
        bogus = ExecInstr(
            bank_reads=((0, 5),),
            port_source=(None,) * 8,
            pe_ops=(),
            writes=(),
        )
        with pytest.raises(CompileError):
            analyze_residences([bogus])


class TestReorder:
    def test_hazard_free_after_reorder(self, pipeline, cfg):
        _, _, schedule = pipeline
        result = reorder(
            schedule.instructions, cfg, extra_deps=schedule.anchor_deps
        )
        flagged = annotate_liveness(result.instructions)
        verify_hazard_free(flagged, cfg)

    def test_preserves_instruction_multiset(self, pipeline, cfg):
        _, _, schedule = pipeline
        result = reorder(schedule.instructions, cfg)
        originals = [
            i for i in result.instructions if not isinstance(i, NopInstr)
        ]
        assert len(originals) == len(schedule.instructions)

    def test_chain_needs_nops(self, cfg):
        # A pure serial chain cannot hide the pipeline latency.
        bdag = binarize(make_chain_dag(length=20)).dag
        decomp = decompose(bdag, cfg)
        mapping = map_banks(decomp, Interconnect(cfg))
        schedule = build_schedule(decomp, mapping)
        result = reorder(schedule.instructions, cfg)
        assert result.nops_inserted > 0

    def test_dependencies_capture_raw(self, pipeline, cfg):
        _, _, schedule = pipeline
        deps = build_dependencies(schedule.instructions, cfg)
        # Every consumed residence must have a producer edge.
        writer = {}
        for idx, instr in enumerate(schedule.instructions):
            producers = {p for p, _ in deps[idx]}
            for key in consumed_vars(instr):
                assert writer[key] in producers
            for key in produced_vars(instr):
                writer[key] = idx

    def test_verify_detects_violation(self, cfg):
        exec_i = ExecInstr(
            bank_reads=(),
            port_source=(None,) * cfg.banks,
            pe_ops=tuple([0] * 0) or (),
            writes=(),
        )
        # Craft a producer/consumer pair one cycle apart.
        from repro.arch import PEOp, WriteSpec

        producer = ExecInstr(
            bank_reads=(),
            port_source=tuple([None] * cfg.banks),
            pe_ops=tuple([PEOp.IDLE] * cfg.num_pes),
            writes=(WriteSpec(pe=0, bank=0, var=1),),
        )
        consumer = StoreInstr(
            row=0, slots=(type(producer.writes[0]), )
        ) if False else None
        from repro.arch import StoreSlot

        consumer = StoreInstr(
            row=0, slots=(StoreSlot(bank=0, var=1),)
        )
        with pytest.raises(ScheduleError):
            verify_hazard_free([producer, consumer], cfg)


class TestSpillAndRegalloc:
    def test_spill_bounds_occupancy(self, cfg):
        tight = ArchConfig(depth=2, banks=8, regs_per_bank=4)
        bdag = binarize(make_random_dag(62, num_ops=200)).dag
        decomp = decompose(bdag, tight)
        mapping = map_banks(decomp, Interconnect(tight))
        schedule = build_schedule(decomp, mapping)
        ro = reorder(
            schedule.instructions, tight, extra_deps=schedule.anchor_deps
        )
        flagged = annotate_liveness(ro.instructions)
        spilled = insert_spills(flagged, tight, next_row=schedule.num_rows)
        assert spilled.spills > 0
        final = annotate_liveness(spilled.instructions)
        verify_hazard_free(final, tight)
        allocation = allocate_addresses(final, tight)
        assert max(allocation.peak_occupancy) <= tight.regs_per_bank

    def test_no_spills_when_r_large(self, pipeline, cfg):
        _, _, schedule = pipeline
        ro = reorder(
            schedule.instructions, cfg, extra_deps=schedule.anchor_deps
        )
        flagged = annotate_liveness(ro.instructions)
        big = ArchConfig(depth=2, banks=8, regs_per_bank=1024)
        spilled = insert_spills(flagged, big, next_row=schedule.num_rows)
        assert spilled.spills == 0
        assert spilled.instructions == flagged

    def test_regalloc_trace(self, pipeline, cfg):
        _, _, schedule = pipeline
        ro = reorder(
            schedule.instructions, cfg, extra_deps=schedule.anchor_deps
        )
        flagged = annotate_liveness(ro.instructions)
        allocation = allocate_addresses(flagged, cfg, trace=True)
        assert len(allocation.trace) == len(flagged)
        assert len(allocation.read_addrs) == len(flagged)

    def test_regalloc_detects_overflow(self, cfg):
        tight = ArchConfig(depth=2, banks=8, regs_per_bank=4)
        bdag = binarize(make_random_dag(63, num_ops=200)).dag
        decomp = decompose(bdag, tight)
        mapping = map_banks(decomp, Interconnect(tight))
        schedule = build_schedule(decomp, mapping)
        flagged = annotate_liveness(schedule.instructions)
        # Without the spill pass, a tight config must overflow.
        with pytest.raises(CompileError):
            allocate_addresses(flagged, tight)
