"""Binarization: rewrite multi-input nodes as trees of 2-input nodes.

Compilation begins by converting the input DAG to a *binary* DAG
(§IV-A): an n-input sum/product node becomes a balanced tree of
``n - 1`` two-input nodes of the same associative operation, so every
node maps directly onto a 2-input PE.  Single-input arithmetic nodes
(which arise in some PC formats) are absorbed by wiring their consumer
directly to their producer — a PE bypass would also work, but removing
them keeps the op count meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from .dag import DAG, DAGBuilder
from .node import OpType
from .traversal import topological_order


@dataclass(frozen=True)
class BinarizeResult:
    """Outcome of :func:`binarize`.

    Attributes:
        dag: The binary DAG.
        node_map: For every original node id, the id in ``dag`` that
            carries its value (the root of its expansion tree).
    """

    dag: DAG
    node_map: tuple[int, ...]


def binarize(dag: DAG, balanced: bool = True) -> BinarizeResult:
    """Return a semantically equivalent DAG with only 2-input nodes.

    Args:
        dag: Any DAG (fan-in >= 1 for arithmetic nodes).
        balanced: If True, expansion trees are balanced (minimizing the
            added depth, ``ceil(log2(fan_in))``); otherwise they are
            left-leaning chains (used to stress pipeline behaviour in
            tests).

    Raises:
        GraphError: If the DAG contains a cycle.
    """
    builder = DAGBuilder()
    node_map: list[int] = [-1] * dag.num_nodes

    for node in topological_order(dag):
        op = dag.op(node)
        if op is OpType.INPUT:
            node_map[node] = builder.add_input()
            continue
        operands = [node_map[p] for p in dag.predecessors(node)]
        if any(o < 0 for o in operands):
            raise GraphError(f"predecessor of node {node} not yet expanded")
        node_map[node] = _expand(builder, op, operands, balanced)

    binary = builder.build(name=f"{dag.name}.bin")
    return BinarizeResult(dag=binary, node_map=tuple(node_map))


def _expand(
    builder: DAGBuilder, op: OpType, operands: list[int], balanced: bool
) -> int:
    """Reduce ``operands`` with 2-input ``op`` nodes; return root id."""
    if len(operands) == 1:
        # Single-input node: forward the producer directly.
        return operands[0]
    if len(operands) == 2:
        return builder.add_op(op, operands)
    if balanced:
        work = list(operands)
        while len(work) > 1:
            nxt: list[int] = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(builder.add_op(op, (work[i], work[i + 1])))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]
    acc = operands[0]
    for operand in operands[1:]:
        acc = builder.add_op(op, (acc, operand))
    return acc


def binarization_overhead(dag: DAG) -> float:
    """Fraction of extra nodes introduced by binarization.

    A fan-in ``k`` node becomes ``k - 1`` nodes, so the overhead is
    computable without building the binary DAG.
    """
    original = dag.num_operations
    if original == 0:
        return 0.0
    expanded = 0
    for node in dag.nodes():
        k = dag.in_degree(node)
        if k >= 2:
            expanded += k - 1
        # fan-in 1 nodes disappear entirely
    return expanded / original - 1.0
