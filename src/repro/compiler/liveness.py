"""Liveness analysis: last-read marking (``valid_rst`` / ``free_source``).

The automatic write policy (§III-B) frees a register when an
instruction's per-bank ``valid_rst`` bit accompanies its last read.
This pass scans the final instruction order, matches every register
read to the *residence* it hits (a residence is one write of a
(bank, var) pair — a variable can have several residences over time:
its primary copy, conflict-resolution temporaries, and post-spill
reloads), and sets the free flag on each residence's last read.

Raises :class:`CompileError` when a read hits no live residence or a
residence is never read — both indicate scheduler bugs, and catching
them here keeps the simulator's error messages meaningful.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..arch import (
    CopyInstr,
    ExecInstr,
    Instruction,
    LoadInstr,
    StoreInstr,
    consumed_vars,
    produced_vars,
)
from ..errors import CompileError


@dataclass(frozen=True)
class Residence:
    """One lifetime of a (bank, var) pair in the register file."""

    writer: int  # instruction index that created it
    bank: int
    var: int
    reads: tuple[int, ...]  # instruction indices, ascending


def analyze_residences(instrs: list[Instruction]) -> list[Residence]:
    """Match reads to writes; returns all residences with their reads."""
    live: dict[tuple[int, int], tuple[int, list[int]]] = {}
    done: list[Residence] = []
    live_get = live.get
    done_append = done.append

    for idx, instr in enumerate(instrs):
        for key in consumed_vars(instr):
            entry = live_get(key)
            if entry is None:
                bank, var = key
                raise CompileError(
                    f"instr {idx} ({instr.mnemonic}) reads var {var} from "
                    f"bank {bank} with no live residence"
                )
            entry[1].append(idx)
        for key in produced_vars(instr):
            entry = live_get(key)
            if entry is not None:
                prev_writer, prev_reads = entry
                if not prev_reads:
                    bank, var = key
                    raise CompileError(
                        f"instr {idx} overwrites unread residence of var "
                        f"{var} in bank {bank} (written at {prev_writer})"
                    )
                done_append(
                    Residence(writer=prev_writer, bank=key[0], var=key[1],
                              reads=tuple(prev_reads))
                )
                del live[key]  # reinsert at the end (dict order)
            live[key] = (idx, [])
    for key, (writer, reads) in live.items():
        done_append(
            Residence(writer=writer, bank=key[0], var=key[1],
                      reads=tuple(reads))
        )

    for res in done:
        if not res.reads:
            raise CompileError(
                f"var {res.var} written to bank {res.bank} at instr "
                f"{res.writer} is never read (dead value leaks a register)"
            )
    return done


def annotate_liveness(
    instrs: list[Instruction],
    residences: list[Residence] | None = None,
) -> list[Instruction]:
    """Return a copy of the schedule with free flags set on last reads.

    Args:
        residences: Precomputed :func:`analyze_residences` result for
            ``instrs`` (flag-setting does not change residence
            structure, so the pipeline shares one analysis between
            this pass and spilling).
    """
    if residences is None:
        residences = analyze_residences(instrs)
    # last_read[(instr_idx, bank)] marks that this instruction's read of
    # this bank is the final read of its residence.
    last_read: set[tuple[int, int]] = set()
    for res in residences:
        last_read.add((res.reads[-1], res.bank))

    out: list[Instruction] = []
    for idx, instr in enumerate(instrs):
        # Instructions whose flags are already correct (common on the
        # post-spill re-annotation) are reused as-is — the replaced
        # copy would compare equal anyway.
        if isinstance(instr, ExecInstr):
            rst = frozenset(
                bank
                for bank, _ in instr.bank_reads
                if (idx, bank) in last_read
            )
            if rst == instr.valid_rst:
                out.append(instr)
            else:
                out.append(dataclasses.replace(instr, valid_rst=rst))
        elif isinstance(instr, CopyInstr):
            if all(
                m.free_source == ((idx, m.src_bank) in last_read)
                for m in instr.moves
            ):
                out.append(instr)
                continue
            moves = tuple(
                dataclasses.replace(
                    m, free_source=(idx, m.src_bank) in last_read
                )
                for m in instr.moves
            )
            out.append(CopyInstr(moves=moves))
        elif isinstance(instr, StoreInstr):
            if all(
                s.free_source == ((idx, s.bank) in last_read)
                for s in instr.slots
            ):
                out.append(instr)
                continue
            slots = tuple(
                dataclasses.replace(
                    s, free_source=(idx, s.bank) in last_read
                )
                for s in instr.slots
            )
            out.append(dataclasses.replace(instr, slots=slots))
        else:
            out.append(instr)
    return out


def max_live_per_bank(
    instrs: list[Instruction], banks: int
) -> list[int]:
    """Peak simultaneous residences per bank (pre-spill pressure).

    Counts a residence live from its write to its last read, which is
    exactly the automatic-policy occupancy.
    """
    residences = analyze_residences(instrs)
    events: list[tuple[int, int, int]] = []  # (time, +1/-1, bank)
    for res in residences:
        events.append((res.writer, 1, res.bank))
        events.append((res.reads[-1], -1, res.bank))
    # Frees happen at read (issue) before the same instruction's own
    # writes reserve, so sort frees first at equal time.
    events.sort(key=lambda e: (e[0], e[1]))
    live = [0] * banks
    peak = [0] * banks
    for _, delta, bank in events:
        live[bank] += delta
        peak[bank] = max(peak[bank], live[bank])
    return peak
