"""Seeded differential fuzzing over the synthetic scenario families.

``fuzz(budget=N, seed=S, jobs=J)`` derives ``N`` scenarios from one
master seed — round-robin over the generator families so every family
is exercised even at small budgets, with sizes spanning degenerate
(``n=3``) through a few hundred nodes, random architecture points from
:data:`CONFIG_POOL`, and per-scenario value seeds — then fans the
differential oracle (:func:`repro.verify.differential.check_scenario`)
out over :func:`repro.runner.orchestrator.parallel_map`.

Scenario derivation is a pure function of ``(budget, seed, families,
fault)``: re-running with the same arguments replays the identical
scenario list, so a CI failure is reproducible locally from the two
numbers in the log line.

On mismatch, the failing DAG is shrunk to a minimal reproducer
(:func:`repro.verify.shrink.shrink_dag`) and written as a replayable
artifact under ``results/repro_cases/`` (:mod:`repro.verify.
artifacts`).

Two robustness layers sit on top of the oracle:

* ``task_timeout_s`` arms a per-scenario wall-clock alarm inside the
  worker (``SIGALRM``), so one wedged compile cannot stall a whole
  campaign — timed-out scenarios come back as failures, are shrunk
  with a timeout-aware predicate and written as repro cases.  The
  fuzz-only :data:`STALL_FAULT` injects exactly that wedge for tests.
* ``campaign_id`` routes the fan-out through the durable work queue
  (:mod:`repro.runner.queue`) instead of an in-memory pool: progress
  is checkpointed per scenario, a killed run resumes with
  ``resume=True`` (CLI ``repro fuzz --resume --campaign <id>``), and
  poison scenarios are quarantined after ``max_attempts`` instead of
  sinking the campaign.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import random
import signal
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import VerificationError
from ..runner.orchestrator import default_jobs, parallel_map
from ..workloads.synth import MIN_NODES, SYNTH_FAMILIES, SynthParams
from .artifacts import ReproCase, write_case
from .differential import (
    FAULTS,
    Mismatch,
    Scenario,
    ScenarioOutcome,
    check_scenario,
    diff_check_dag,
)
from .shrink import ShrinkResult, shrink_dag

#: Fuzz-layer-only injected fault: the scenario wedges mid-task
#: (sleeps past any reasonable budget) instead of miscomputing.  It is
#: deliberately NOT in :data:`repro.verify.differential.FAULTS` — the
#: oracle never sees it; the timed task wrapper intercepts it before
#: :func:`check_scenario` runs.  Requires ``task_timeout_s``.
STALL_FAULT = "stall"


class TaskTimeout(BaseException):
    """A scenario exceeded its wall-clock budget.

    Derives from ``BaseException`` so broad ``except Exception``
    blocks in library code (cache reads treating corruption as a
    miss, etc.) cannot swallow the alarm and leave the task wedged
    with its one-shot timer spent.
    """


def _raise_task_timeout(signum, frame):  # noqa: ARG001 - signal API
    raise TaskTimeout()


@contextlib.contextmanager
def _alarm(timeout_s: float | None):
    """Arm a one-shot SIGALRM raising :class:`TaskTimeout`.

    No-op when ``timeout_s`` is ``None`` or when not on the main
    thread (signal handlers can only be installed there; worker
    processes run tasks on their main thread, so the guard only
    relaxes in exotic embedding situations).
    """
    if (
        timeout_s is None
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    previous = signal.signal(signal.SIGALRM, _raise_task_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _check_timed_task(item: tuple) -> ScenarioOutcome:
    """Campaign/pool task body: one scenario under a wall-clock budget.

    The item is ``(scenario, timeout_s)`` so the same module-level
    callable serves both the in-memory pool and the durable queue
    (whose workers re-import it by name).
    """
    scenario, timeout_s = item
    if timeout_s is None:
        return check_scenario(scenario)
    try:
        with _alarm(timeout_s):
            if scenario.fault == STALL_FAULT:
                # The injected wedge: sleep until the alarm fires.
                time.sleep(timeout_s + 3600.0)
            return check_scenario(scenario)
    except TaskTimeout:
        return ScenarioOutcome(
            scenario=scenario,
            status="timeout",
            mismatch=Mismatch(
                "task-timeout",
                f"exceeded {timeout_s:g}s wall clock",
            ),
            nodes=scenario.params.n,
            fingerprint="",
            cycles=0,
        )

#: Architecture points the fuzzer samples.  Mostly roomy register
#: files (so compilation always succeeds) plus one deliberately tight
#: point that forces the spill machinery; scenarios it cannot fit are
#: reported as skipped, not failed.
CONFIG_POOL: tuple[str, ...] = (
    "D1-B8-R16",
    "D2-B8-R16",
    "D2-B8-R8",
    "D2-B16-R32",
    "D3-B16-R16",
    "D3-B32-R32",
)


def make_scenarios(
    budget: int,
    seed: int = 0,
    families: Iterable[str] | None = None,
    fault: str | None = None,
    configs: Iterable[str] | None = None,
    image_all: bool = False,
) -> list[Scenario]:
    """Derive the deterministic scenario list for one fuzzing run.

    With ``image_all`` the binary-image round-trip stage runs on
    *every* scenario instead of its default every-fourth slice (the
    CI ``image-roundtrip`` job uses this).

    Raises:
        VerificationError: Unknown family/fault name or a budget < 1.
    """
    if budget < 1:
        raise VerificationError(f"budget must be >= 1, got {budget}")
    chosen = tuple(families) if families else tuple(sorted(SYNTH_FAMILIES))
    unknown = [f for f in chosen if f not in SYNTH_FAMILIES]
    if unknown:
        raise VerificationError(
            f"unknown synth families {unknown}; choose from "
            f"{sorted(SYNTH_FAMILIES)}"
        )
    if fault is not None and fault not in FAULTS and fault != STALL_FAULT:
        raise VerificationError(
            f"unknown fault {fault!r}; choose from "
            f"{sorted([*FAULTS, STALL_FAULT])}"
        )
    pool = tuple(configs) if configs else CONFIG_POOL
    rng = random.Random(seed)
    scenarios: list[Scenario] = []
    for i in range(budget):
        family = chosen[i % len(chosen)]
        tier = rng.random()
        if tier < 0.15:  # degenerate / tiny
            n = rng.randint(MIN_NODES, 9)
        elif tier < 0.85:  # bread and butter
            n = rng.randint(10, 120)
        else:  # chunky
            n = rng.randint(121, 260)
        kwargs = _family_kwargs(rng, family, n)
        # Every fourth scenario also exercises the partition-parallel
        # compile path, a disjoint every-fourth slice drives the live
        # micro-batcher (served-vs-direct), a third disjoint slice
        # re-executes through the fused/codegen engines
        # (fused-vs-batch), and the remaining slice round-trips the
        # compiled artifacts through binary images
        # (image-roundtrip).  All assignments are derived WITHOUT
        # consuming the master rng, so the (family, n, seed, config,
        # value_seed, batch) stream — and with it the pinned
        # verify_synth golden — is unchanged from earlier revisions.
        partition_threshold = None
        if i % 4 == 3 and n > 2 * MIN_NODES:
            partition_threshold = max(1, n // (2 + i % 3))
        scenarios.append(
            Scenario(
                params=SynthParams(
                    family=family,
                    n=n,
                    seed=rng.randrange(2**31),
                    kwargs=tuple(sorted(kwargs.items())),
                ),
                config_label=pool[rng.randrange(len(pool))],
                value_seed=rng.randrange(2**31),
                batch=rng.choice((1, 2, 4)),
                fault=fault,
                partition_threshold=partition_threshold,
                serve=i % 4 == 1,
                fused=i % 4 == 2,
                image=image_all or i % 4 == 0,
            )
        )
    return scenarios


def _family_kwargs(
    rng: random.Random, family: str, n: int
) -> dict[str, object]:
    """Occasionally push a family-specific knob to an extreme."""
    if rng.random() < 0.6:
        return {}  # family defaults
    if family == "layered":
        return {
            "fill_prob": rng.choice((0.0, 0.25, 1.0)),
            "width": rng.choice((0, 2, 3)),
        }
    if family == "wide":
        return {"fan_in": rng.randint(2, 6)}
    if family == "diamond":
        return {"paths": rng.randint(2, 6)}
    if family == "near_chain":
        return {"skip_prob": rng.choice((0.0, 0.3, 0.6))}
    if family == "disconnected":
        return {"components": rng.randint(1, max(1, min(4, n // MIN_NODES)))}
    if family == "reuse":
        return {"pool_size": rng.randint(2, 6)}
    if family == "skewed_fanout":
        return {"hubs": rng.randint(1, max(1, min(3, n // 3)))}
    return {}


@dataclass(frozen=True)
class FuzzFailure:
    """One mismatch, shrunk and (optionally) written to disk."""

    outcome: ScenarioOutcome
    shrunk_nodes: int
    shrink_checks: int
    case_path: Path | None


@dataclass
class FuzzReport:
    """Aggregate result of one fuzzing run."""

    budget: int
    seed: int
    outcomes: list[ScenarioOutcome]
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def checked(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "skipped")

    @property
    def timed_out(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "timeout")

    @property
    def quarantined(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "quarantined")

    def by_family(self) -> dict[str, dict[str, int]]:
        """Per-family tallies for reports and snapshots."""
        table: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            row = table.setdefault(
                o.scenario.params.family,
                {"scenarios": 0, "ok": 0, "skipped": 0, "mismatches": 0,
                 "nodes": 0, "cycles": 0},
            )
            row["scenarios"] += 1
            row["nodes"] += o.nodes
            row["cycles"] += o.cycles
            key = {"ok": "ok", "skipped": "skipped"}.get(
                o.status, "mismatches"
            )
            row[key] += 1
        return dict(sorted(table.items()))

    def render(self) -> str:
        extra = ""
        if self.timed_out or self.quarantined:
            extra = (
                f" ({self.timed_out} timed out, "
                f"{self.quarantined} quarantined)"
            )
        lines = [
            f"fuzz: budget {self.budget}, seed {self.seed} — "
            f"{self.checked} ok, {self.skipped} skipped (spill-bound), "
            f"{len(self.failures)} mismatches{extra}"
        ]
        header = f"{'family':16s} {'runs':>5s} {'ok':>5s} " \
                 f"{'skip':>5s} {'fail':>5s} {'nodes':>8s}"
        lines.append(header)
        for family, row in self.by_family().items():
            lines.append(
                f"{family:16s} {row['scenarios']:5d} {row['ok']:5d} "
                f"{row['skipped']:5d} {row['mismatches']:5d} "
                f"{row['nodes']:8d}"
            )
        for failure in self.failures:
            o = failure.outcome
            label = {
                "timeout": "TIMEOUT",
                "quarantined": "QUARANTINED",
            }.get(o.status, "MISMATCH")
            lines.append(
                f"{label} {o.scenario.params.family} "
                f"n={o.scenario.params.n} seed={o.scenario.params.seed}: "
                f"{o.mismatch} -> shrunk to {failure.shrunk_nodes} nodes"
                + (f" ({failure.case_path})" if failure.case_path else "")
            )
        return "\n".join(lines)


def _shrunk_threshold(scenario, candidate) -> int | None:
    """Keep the partitioned path active while shrinking a partitioned
    scenario: scale the threshold down so the candidate still splits
    into at least two pieces."""
    if scenario.partition_threshold is None:
        return None
    return max(1, min(scenario.partition_threshold, candidate.num_nodes // 2))


def _storable_scenario(scenario: Scenario) -> Scenario:
    """Strip the fuzz-only stall fault before persisting a case: the
    oracle (and replay) does not know it, and a disarmed stall replays
    clean — exactly like a disarmed executor fault."""
    if scenario.fault == STALL_FAULT:
        return dataclasses.replace(scenario, fault=None)
    return scenario


def _shrink_failure(
    outcome: ScenarioOutcome,
    write_artifacts: bool,
    out_dir: str | Path | None,
    task_timeout_s: float | None = None,
) -> FuzzFailure:
    """Minimize one failing scenario and persist the repro case."""
    scenario = outcome.scenario
    timed_out = outcome.status == "timeout"
    oracle_fault = (
        None if scenario.fault == STALL_FAULT else scenario.fault
    )
    dag = scenario.params.build()
    config = scenario.config()

    def oracle(candidate):
        return diff_check_dag(
            candidate,
            config,
            value_seed=scenario.value_seed,
            batch=scenario.batch,
            fault=oracle_fault,
            partition_threshold=_shrunk_threshold(scenario, candidate),
            partition_jobs=scenario.partition_jobs,
            serve=scenario.serve,
            fused=scenario.fused,
            image=scenario.image,
        )

    if timed_out:
        # Keep candidates that still blow the wall-clock budget.  The
        # injected stall wedges independently of the DAG, so every
        # candidate "fails" and shrinking converges instantly; a real
        # wedge shrinks toward the smallest DAG that still hangs.
        def still_fails(candidate) -> bool:
            if scenario.fault == STALL_FAULT:
                return True
            try:
                with _alarm(task_timeout_s):
                    oracle(candidate)
            except TaskTimeout:
                return True
            return False

    else:
        def still_fails(candidate) -> bool:
            return oracle(candidate).mismatch is not None

    shrunk: ShrinkResult = shrink_dag(dag, still_fails)
    case_path: Path | None = None
    if write_artifacts:
        # Record the mismatch as observed on the *shrunk* DAG — the
        # stage can legitimately sharpen while shrinking.  The final
        # probe runs under the alarm too: a shrunk-but-still-wedging
        # DAG must not hang the reporting path.
        final_mismatch = outcome.mismatch
        try:
            with _alarm(task_timeout_s):
                final = oracle(shrunk.dag)
            if final.mismatch is not None:
                final_mismatch = final.mismatch
        except TaskTimeout:
            pass
        case = ReproCase(
            scenario=_storable_scenario(scenario),
            mismatch=final_mismatch,
            shrunk_dag=shrunk.dag,
            original_nodes=dag.num_nodes,
            shrink_checks=shrunk.checks,
        )
        case_path = write_case(case, out_dir)
    return FuzzFailure(
        outcome=outcome,
        shrunk_nodes=shrunk.dag.num_nodes,
        shrink_checks=shrunk.checks,
        case_path=case_path,
    )


def _quarantine_failure(
    outcome: ScenarioOutcome,
    write_artifacts: bool,
    out_dir: str | Path | None,
    task_timeout_s: float | None = None,
) -> FuzzFailure:
    """Persist a quarantined (poison) scenario as a replayable case.

    No shrinking: the scenario killed ``max_attempts`` workers, so
    every probe is a fresh hazard.  The unshrunk DAG is written under
    an alarm guard; if even *building* it wedges, the failure is still
    reported, just without an artifact.
    """
    case_path: Path | None = None
    nodes = outcome.scenario.params.n
    if write_artifacts:
        try:
            with _alarm(task_timeout_s):
                dag = outcome.scenario.params.build()
                nodes = dag.num_nodes
                case = ReproCase(
                    scenario=_storable_scenario(outcome.scenario),
                    mismatch=outcome.mismatch
                    or Mismatch("quarantine", "poison scenario"),
                    shrunk_dag=dag,
                    original_nodes=dag.num_nodes,
                    shrink_checks=0,
                )
                case_path = write_case(case, out_dir)
        except BaseException:  # noqa: BLE001 - reporting must survive
            case_path = None
    return FuzzFailure(
        outcome=outcome,
        shrunk_nodes=nodes,
        shrink_checks=0,
        case_path=case_path,
    )


def _campaign_fingerprint(
    budget: int,
    seed: int,
    families,
    fault,
    configs,
    image_all: bool,
    task_timeout_s,
) -> str:
    """Identity of a fuzz campaign's parameter set: resuming a
    campaign with different parameters must be refused, not silently
    merged."""
    key = repr(
        (
            "fuzz",
            budget,
            seed,
            tuple(families) if families else None,
            fault,
            tuple(configs) if configs else None,
            image_all,
            task_timeout_s,
        )
    )
    return hashlib.blake2b(key.encode(), digest_size=16).hexdigest()


def fuzz(
    budget: int,
    seed: int = 0,
    jobs: int | None = None,
    families: Iterable[str] | None = None,
    fault: str | None = None,
    configs: Iterable[str] | None = None,
    write_artifacts: bool = True,
    out_dir: str | Path | None = None,
    progress: bool | Callable[[int, int], None] = False,
    image_all: bool = False,
    task_timeout_s: float | None = None,
    campaign_id: str | None = None,
    resume: bool = False,
    max_attempts: int = 3,
    campaign_root: str | Path | None = None,
) -> FuzzReport:
    """Run one differential fuzzing campaign.

    Args:
        budget: Number of scenarios to generate and check.
        seed: Master seed; (budget, seed, families, fault) fully
            determines the campaign.
        jobs: Worker processes for the oracle fan-out (``None`` =
            ``REPRO_JOBS`` or serial).
        families: Restrict to these generator families (default: all).
        fault: Inject a named executor fault (:data:`repro.verify.
            differential.FAULTS`) or the fuzz-layer
            :data:`STALL_FAULT` into every scenario — for tests and
            demos of the harness itself.
        configs: Override :data:`CONFIG_POOL` labels.
        write_artifacts: Write shrunk repro cases to ``out_dir``.
        out_dir: Case directory (default ``results/repro_cases/``).
        image_all: Run the binary-image round-trip stage on every
            scenario, not just its default every-fourth slice.
        progress: Progress callback or True for a stderr ticker.
        task_timeout_s: Hard per-scenario wall-clock budget enforced
            inside the worker; timed-out scenarios are failures (and
            are shrunk/persisted like any other).
        campaign_id: Run through the durable work queue under this
            campaign id instead of an in-memory pool — the run
            becomes killable/resumable.
        resume: Pick up an existing campaign where it left off
            (requires ``campaign_id``).
        max_attempts: Campaign mode: failures per scenario before it
            is quarantined.
        campaign_root: Campaign mode: override the campaigns
            directory (default ``<cache dir>/campaigns``).

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is False iff any scenario
        mismatched, timed out or was quarantined (reproducers are in
        ``report.failures``).
    """
    if fault == STALL_FAULT and task_timeout_s is None:
        raise VerificationError(
            f"the {STALL_FAULT!r} fault wedges scenarios forever; it "
            "requires task_timeout_s (--task-timeout) to be survivable"
        )
    if resume and campaign_id is None:
        raise VerificationError(
            "resume=True needs a campaign_id (--campaign <id>)"
        )
    scenarios = make_scenarios(
        budget, seed=seed, families=families, fault=fault, configs=configs,
        image_all=image_all,
    )
    quarantined: dict[int, dict] = {}
    if campaign_id is None:
        if task_timeout_s is None:
            outcomes = parallel_map(
                check_scenario, scenarios, jobs=jobs, progress=progress,
                desc="fuzz",
            )
        else:
            outcomes = parallel_map(
                _check_timed_task,
                [(s, task_timeout_s) for s in scenarios],
                jobs=jobs,
                progress=progress,
                desc="fuzz",
            )
    else:
        from ..runner.queue import run_campaign

        # The in-worker alarm is the first line of defense; the
        # coordinator's wall-clock kill is the backstop for wedges the
        # alarm cannot interrupt (C-level loops).
        backstop = (
            None if task_timeout_s is None else task_timeout_s + 30.0
        )
        result = run_campaign(
            _check_timed_task,
            [(s, task_timeout_s) for s in scenarios],
            campaign_id=campaign_id,
            root=campaign_root,
            workers=default_jobs() if jobs is None else max(1, int(jobs)),
            resume=resume,
            kind="fuzz",
            params_fingerprint=_campaign_fingerprint(
                budget, seed, families, fault, configs, image_all,
                task_timeout_s,
            ),
            max_attempts=max_attempts,
            task_timeout_s=backstop,
            progress=progress,
            desc="fuzz",
        )
        quarantined = result.quarantined
        outcomes = []
        for i, value in enumerate(result.results):
            if i in quarantined:
                doc = quarantined[i]
                outcomes.append(
                    ScenarioOutcome(
                        scenario=scenarios[i],
                        status="quarantined",
                        mismatch=Mismatch(
                            "quarantine",
                            f"{doc.get('attempts', '?')} failed "
                            f"attempts; last: "
                            f"{str(doc.get('error', ''))[:200]}",
                        ),
                        nodes=scenarios[i].params.n,
                        fingerprint="",
                        cycles=0,
                    )
                )
            else:
                outcomes.append(value)
    report = FuzzReport(budget=budget, seed=seed, outcomes=outcomes)
    for outcome in outcomes:
        if outcome.status in ("mismatch", "timeout"):
            report.failures.append(
                _shrink_failure(
                    outcome, write_artifacts, out_dir, task_timeout_s
                )
            )
        elif outcome.status == "quarantined":
            report.failures.append(
                _quarantine_failure(
                    outcome, write_artifacts, out_dir, task_timeout_s
                )
            )
    return report
