"""Bench + reproduction of Table I: workload statistics + compile time."""

from repro.experiments import table1_workloads

from conftest import publish


def test_table1_workloads(benchmark):
    result = benchmark.pedantic(
        table1_workloads.run, rounds=1, iterations=1
    )
    publish("table1_workloads", table1_workloads.render(result))
    # Scaled instances track the published size ordering.
    nodes = [r.stats.nodes for r in result.rows]
    paper = [r.paper_nodes for r in result.rows]
    bigger_pairs = sum(
        1
        for i in range(len(nodes))
        for j in range(i + 1, len(nodes))
        if (nodes[i] < nodes[j]) == (paper[i] < paper[j])
    )
    total_pairs = len(nodes) * (len(nodes) - 1) // 2
    assert bigger_pairs / total_pairs > 0.7
