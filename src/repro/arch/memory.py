"""On-chip memories: vector data memory and instruction memory.

The data memory reads/writes ``B``-word rows with a per-lane enable
mask (fig. 5(b)); lane ``i`` is hard-wired to bank ``i`` for loads and
stores (the *register* side addressing is what's flexible, not the
memory side).

The instruction memory supplies ``IL`` bits per cycle where ``IL`` is
the longest instruction's length; the shifter in front of the decoder
re-aligns the densely packed variable-length stream (fig. 7(b)).  We
model it at the accounting level: total bits, fetch count, utilization.
"""

from __future__ import annotations

from ..errors import SimulationError
from .config import ArchConfig


class DataMemory:
    """Vector-ported scratchpad: ``rows`` x ``B`` words.

    Each lane stores a (var, value) pair; the var tag exists only for
    simulation-time checking and has no hardware counterpart.
    """

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.rows = config.data_mem_rows
        self._tags: list[list[int]] = [
            [-1] * config.banks for _ in range(self.rows)
        ]
        self._data: list[list[float]] = [
            [0.0] * config.banks for _ in range(self.rows)
        ]
        self.reads = 0
        self.writes = 0

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise SimulationError(
                f"data-memory row {row} out of range 0..{self.rows - 1}"
            )

    def write_lane(self, row: int, lane: int, var: int, value: float) -> None:
        """Host-side population of inputs (not an instruction)."""
        self._check_row(row)
        self._tags[row][lane] = var
        self._data[row][lane] = value

    def load_row(self, row: int) -> list[tuple[int, float]]:
        """Read a full row; returns (var, value) per lane."""
        self._check_row(row)
        self.reads += 1
        return list(zip(self._tags[row], self._data[row]))

    def store_lanes(
        self, row: int, lanes: list[tuple[int, int, float]]
    ) -> None:
        """Write (lane, var, value) triples of one row (masked store)."""
        self._check_row(row)
        self.writes += 1
        for lane, var, value in lanes:
            self._tags[row][lane] = var
            self._data[row][lane] = value

    def peek(self, row: int, lane: int) -> tuple[int, float]:
        """Non-architectural inspection (tests, result extraction)."""
        self._check_row(row)
        return self._tags[row][lane], self._data[row][lane]

    @property
    def size_bits(self) -> int:
        from .config import WORD_BITS

        return self.rows * self.config.banks * WORD_BITS


class InstructionMemoryStats:
    """Accounting model of the packed instruction memory."""

    def __init__(self, fetch_width_bits: int) -> None:
        if fetch_width_bits < 1:
            raise SimulationError("fetch width must be positive")
        self.fetch_width_bits = fetch_width_bits
        self.total_bits = 0
        self.instruction_count = 0

    def append(self, length_bits: int) -> None:
        """Record one densely packed instruction."""
        if length_bits < 1:
            raise SimulationError("instruction length must be positive")
        if length_bits > self.fetch_width_bits:
            raise SimulationError(
                f"instruction of {length_bits}b exceeds fetch width "
                f"{self.fetch_width_bits}b"
            )
        self.total_bits += length_bits
        self.instruction_count += 1

    @property
    def fetches(self) -> int:
        """IL-bit fetches needed to stream the packed program once.

        Dense packing means the fetch count is the ceiling of
        total/IL — the shifter guarantees no alignment stalls.
        """
        return -(-self.total_bits // self.fetch_width_bits)

    @property
    def packed_size_bits(self) -> int:
        return self.total_bits

    @property
    def padded_size_bits(self) -> int:
        """Size if every instruction were padded to IL (the baseline
        the paper's 30% program-size reduction is measured against)."""
        return self.instruction_count * self.fetch_width_bits

    @property
    def packing_efficiency(self) -> float:
        if self.padded_size_bits == 0:
            return 1.0
        return self.total_bits / self.padded_size_bits
