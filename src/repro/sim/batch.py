"""Phase 2 of the two-phase execution engine: vectorized batch runs.

Executes an :class:`~repro.sim.plan.ExecutionPlan` on a whole
``(B, num_inputs)`` input matrix in one sweep.  The state of all B
independent inferences is held in a single ``(cells, B)`` float64
array — one register-file/data-memory/scratch image per batch row,
sharing one allocation — and every tape step is a numpy
gather/compute/scatter over the batch dimension:

* :class:`~repro.sim.plan.MoveStep` — ``state[dst] = state[src]``;
* :class:`~repro.sim.plan.ComputeStep` — one fancy-indexed ``+`` /
  ``*`` / copy per opcode group of one PE-tree layer.

No verification happens here: the plan was verified at lowering time
(hazards, interconnect legality, address predictions, memory tags),
so the per-row cost is pure arithmetic.  Outputs are bitwise identical
to the scalar simulator's — both paths perform the same IEEE-double
operations in the same tree order (asserted across the golden
workloads in the test suite).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..arch import Interconnect, Program
from ..errors import SimulationError
from .functional import ActivityCounters
from .plan import ComputeStep, ExecutionPlan, MoveStep, lower_program


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batched execution.

    Attributes:
        outputs: ``var -> (B,) float64`` final value of every output
            variable across the batch.
        batch: Number of rows executed.
        counters: Activity totals for the whole batch (the single-run
            counters scaled by B — execution is static, so this is
            exact, not an estimate).
        peak_occupancy: Per-bank peak register usage (identical for
            every row).
        host_seconds: Wall-clock the host spent executing the sweep.
    """

    outputs: dict[int, np.ndarray]
    batch: int
    counters: ActivityCounters
    peak_occupancy: list[int]
    host_seconds: float = 0.0

    @property
    def cycles(self) -> int:
        """Device cycles for the whole batch (B sequential runs)."""
        return self.counters.cycles

    @property
    def host_rows_per_second(self) -> float:
        if self.host_seconds <= 0:
            return 0.0
        return self.batch / self.host_seconds

    def row_outputs(self, row: int) -> dict[int, float]:
        """Outputs of one batch row, in the scalar simulator's shape."""
        return {var: float(col[row]) for var, col in self.outputs.items()}


class BatchSimulator:
    """Executes a lowered plan over batches of input rows.

    Construct from a :class:`~repro.sim.plan.ExecutionPlan` (reusing a
    verified lowering) or directly from a
    :class:`~repro.arch.Program` (lowered — and therefore verified —
    on construction).
    """

    def __init__(
        self,
        plan_or_program: ExecutionPlan | Program,
        interconnect: Interconnect | None = None,
    ) -> None:
        if isinstance(plan_or_program, ExecutionPlan):
            self.plan = plan_or_program
        else:
            self.plan = lower_program(
                plan_or_program, interconnect=interconnect
            )

    def run(self, inputs: np.ndarray) -> BatchResult:
        """Execute a ``(B, num_inputs)`` input matrix in one sweep.

        A 1-D vector is treated as a batch of one.

        Raises:
            SimulationError: If the input matrix is the wrong shape.
        """
        plan = self.plan
        matrix = np.asarray(inputs, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[np.newaxis, :]
        if matrix.ndim != 2:
            raise SimulationError(
                f"expected a (B, num_inputs) matrix, got shape "
                f"{matrix.shape}"
            )
        if matrix.shape[1] < plan.num_inputs:
            raise SimulationError(
                f"input matrix too narrow: need {plan.num_inputs} "
                f"columns, got {matrix.shape[1]}"
            )
        batch = matrix.shape[0]
        if batch < 1:
            raise SimulationError("input matrix has no rows to execute")
        t0 = time.perf_counter()
        state = np.zeros((plan.state_size, batch), dtype=np.float64)
        if plan.input_cells.size:
            state[plan.input_cells] = matrix[:, plan.input_slots].T
        # Scalar Python floats overflow to inf silently; match that
        # instead of spraying RuntimeWarnings over deep product chains.
        with np.errstate(over="ignore", invalid="ignore"):
            for step in plan.steps:
                if type(step) is MoveStep:
                    state[step.dst] = state[step.src]
                else:
                    self._compute(state, step)
        outputs = {
            var: state[cell].copy()
            for var, cell in zip(plan.output_vars, plan.output_cells)
        }
        host_seconds = time.perf_counter() - t0
        return BatchResult(
            outputs=outputs,
            batch=batch,
            counters=plan.scaled_counters(batch),
            peak_occupancy=list(plan.peak_occupancy),
            host_seconds=host_seconds,
        )

    @staticmethod
    def _compute(state: np.ndarray, step: ComputeStep) -> None:
        if step.mov_out.size:
            state[step.mov_out] = state[step.mov_src]
        if step.add_out.size:
            state[step.add_out] = state[step.add_a] + state[step.add_b]
        if step.mul_out.size:
            state[step.mul_out] = state[step.mul_a] * state[step.mul_b]


def run_batch(
    plan_or_program: ExecutionPlan | Program,
    inputs: np.ndarray,
    interconnect: Interconnect | None = None,
) -> BatchResult:
    """Convenience wrapper: build a BatchSimulator and run once."""
    return BatchSimulator(plan_or_program, interconnect=interconnect).run(
        inputs
    )
