"""Bench + reproduction of fig. 3(c): systolic vs tree peak utilization."""

from repro.experiments import fig03_utilization

from conftest import publish


def test_fig03_utilization(benchmark):
    result = benchmark.pedantic(
        fig03_utilization.run,
        kwargs={"workload": "tretail", "scale": 0.05},
        rounds=1,
        iterations=1,
    )
    publish("fig03_utilization", fig03_utilization.render(result))
    assert all(
        p.tree_utilization >= p.systolic_utilization for p in result.points
    )
    assert result.points[-1].systolic_utilization < 0.8
