"""Error-hierarchy and edge-case coverage."""

import pytest

from repro import (
    CompileError,
    ConfigError,
    GraphError,
    MappingError,
    ReproError,
    ScheduleError,
    SimulationError,
    SpillError,
    WorkloadError,
)
from repro.arch import ArchConfig
from repro.compiler import compile_dag
from repro.errors import (
    BankConflictError,
    CycleError,
    EncodingError,
    HazardError,
    RegisterFileError,
)
from repro.graphs import DAGBuilder
from repro.testing import compile_and_verify, make_random_dag


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            CycleError,
            ConfigError,
            CompileError,
            MappingError,
            ScheduleError,
            SpillError,
            EncodingError,
            SimulationError,
            HazardError,
            BankConflictError,
            RegisterFileError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_compile_suberrors(self):
        assert issubclass(MappingError, CompileError)
        assert issubclass(ScheduleError, CompileError)
        assert issubclass(SpillError, CompileError)

    def test_sim_suberrors(self):
        assert issubclass(HazardError, SimulationError)
        assert issubclass(RegisterFileError, SimulationError)


class TestEdgeCaseDags:
    def test_minimum_possible_dag(self, tiny_config):
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        b.add_mul([x, y])
        compile_and_verify(b.build(), tiny_config)

    def test_two_independent_outputs(self, tiny_config):
        b = DAGBuilder()
        x, y, z, w = (b.add_input() for _ in range(4))
        b.add_add([x, y])
        b.add_mul([z, w])
        compile_and_verify(b.build(), tiny_config)

    def test_value_reused_many_times(self, tiny_config):
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        s = b.add_add([x, y])
        outs = [b.add_mul([s, b.add_input()]) for _ in range(10)]
        b.add_add(outs)
        compile_and_verify(b.build("fanout"), tiny_config)

    def test_squaring_duplicate_operand(self, tiny_config):
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        s = b.add_add([x, y])
        b.add_mul([s, s])  # s^2: both tree inputs read one variable
        result, sim = compile_and_verify(b.build("square"), tiny_config)
        assert sim.outputs

    def test_deep_fan_in_node(self, tiny_config):
        b = DAGBuilder()
        leaves = [b.add_input() for _ in range(33)]
        b.add_add(leaves)  # fan-in 33 -> 32 binary nodes, depth 6
        compile_and_verify(b.build("fat"), tiny_config)

    def test_smallest_architecture(self):
        cfg = ArchConfig(depth=1, banks=2, regs_per_bank=4)
        compile_and_verify(make_random_dag(151, num_ops=30), cfg)

    def test_depth_exceeding_config_paths(self):
        # D=1 with long chains: every node is its own block.
        cfg = ArchConfig(depth=1, banks=4, regs_per_bank=8)
        from repro.testing import make_chain_dag

        result, sim = compile_and_verify(make_chain_dag(length=10), cfg)
        assert result.stats.num_blocks >= 10
