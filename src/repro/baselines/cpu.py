"""Multicore CPU baseline (the paper's CPU [44], GRAPHOPT execution).

An 18-core Xeon Gold 6154 at 3GHz running the GRAPHOPT-parallelized
DAG.  The paper attributes its underperformance (1.2 GOPS on the small
suite vs a 3.4 TOPS peak) to two mechanisms, which this model encodes:

* **Cache-line underutilization**: a fine-grained node reads operands
  from effectively random addresses, so a miss drags a 64B line for 4B
  of useful data; throughput becomes memory-bandwidth bound at
  ``miss_rate * 64B`` per operand.
* **Synchronization**: GRAPHOPT executes super-layers separated by
  barriers; small or deep DAGs cannot amortize the barrier cost, and
  available parallelism (n/l) caps the usable cores.

Model::

    t = compute + memory + sync
    compute = ops * cpi / (f * usable_cores)
    memory  = operand_bytes_touched / DRAM_bandwidth
    sync    = barriers * barrier_seconds

Constants are calibrated on the benchmark suite so the Table III
ratios versus DPU-v2 hold (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs import DAG, longest_path_length
from .common import PlatformResult


@dataclass(frozen=True)
class CPUModel:
    """Analytic Xeon model.

    Attributes mirror the mechanisms above; defaults are the calibrated
    values used throughout the evaluation.
    """

    name: str = "CPU"
    cores: int = 18
    frequency_hz: float = 3e9
    cycles_per_op: float = 3.0  # ALU + address generation per node
    miss_rate: float = 0.55  # operand reads missing on-chip caches
    cache_line_bytes: int = 64
    dram_bandwidth_bytes: float = 120e9  # Table III: 120 GB/s
    barrier_seconds: float = 1.5e-6  # OpenMP-style barrier latency
    super_layer_depth: float = 8.0  # DAG levels folded per barrier
    parallelism_per_core: float = 12.0  # n/l needed to feed one core
    power_w: float = 55.0  # Table III

    def run(self, dag: DAG) -> PlatformResult:
        """Estimate execution time of one DAG evaluation."""
        ops = dag.num_operations
        edges = dag.num_edges
        depth = max(longest_path_length(dag), 1)
        parallelism = dag.num_nodes / depth
        usable_cores = max(
            1.0, min(self.cores, parallelism / self.parallelism_per_core)
        )
        compute = ops * self.cycles_per_op / (
            self.frequency_hz * usable_cores
        )
        bytes_touched = edges * self.miss_rate * self.cache_line_bytes
        memory = bytes_touched / self.dram_bandwidth_bytes
        barriers = depth / self.super_layer_depth
        sync = barriers * self.barrier_seconds
        return PlatformResult(
            platform=self.name,
            workload=dag.name,
            operations=ops,
            seconds=compute + memory + sync,
            power_w=self.power_w,
        )


#: The SPU paper's CPU baseline (CPU_SPU in Table III) — same machine
#: class, slightly different software stack; the paper measured it ~6%
#: slower than the GRAPHOPT CPU on large PCs.
CPU_SPU_MODEL = CPUModel(
    name="CPU_SPU",
    cycles_per_op=3.2,
    barrier_seconds=1.7e-6,
    power_w=61.0,
)
