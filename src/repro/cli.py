"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's ``run.sh`` workflow:

* ``compile``  — compile a DAG file (JSON/edge-list) and report stats;
* ``run``      — compile + simulate a workload and verify against the
  golden model;
* ``suite``    — compile the Table-I suite and print the fig. 14-style
  throughput table;
* ``dse``      — run the design-space exploration and print fig. 11's
  optimum corners;
* ``sweep``    — the same DSE through the parallel orchestrator
  (``--jobs N``) with the content-addressed artifact cache;
* ``all``      — every figure/table experiment, fanned out over
  worker processes;
* ``encode``   — emit the packed binary program for a DAG;
* ``fuzz``     — differential verification: seeded synthetic
  scenarios through the three-way executor cross-check, shrinking
  any mismatch to a replayable case under ``results/repro_cases/``.

The evaluation commands (``run``, ``suite``, ``dse``, ``sweep``,
``all``) share ``--cache-dir``/``--no-cache``: compiled programs and
lowered execution plans are memoized on disk keyed by content, so a
warm re-run skips compilation entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .arch import ArchConfig, encode_program
from .compiler import compile_dag
from .graphs import from_edge_list, from_json, DAG
from .sim import evaluate_dag, run_program
from .workloads import DEFAULT_SCALE, build_workload, workload_names


def _parse_config(text: str) -> ArchConfig:
    """Parse ``D3-B64-R32`` style configuration strings."""
    try:
        parts = dict(
            (piece[0].upper(), int(piece[1:]))
            for piece in text.split("-")
        )
        return ArchConfig(
            depth=parts["D"], banks=parts["B"], regs_per_bank=parts["R"]
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(
            f"invalid config {text!r}; expected e.g. D3-B64-R32 ({exc})"
        )


def _load_dag(path: str) -> DAG:
    text = Path(path).read_text()
    if path.endswith(".json"):
        return from_json(text)
    return from_edge_list(text)


def _resolve_workload(name_or_path: str, scale: float) -> DAG:
    if Path(name_or_path).exists():
        return _load_dag(name_or_path)
    return build_workload(name_or_path, scale=scale)


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    import os

    from .runner.cache import DEFAULT_CACHE_DIR

    default_dir = os.environ.get("REPRO_CACHE_DIR") or str(DEFAULT_CACHE_DIR)
    parser.add_argument(
        "--cache-dir", default=default_dir, metavar="DIR",
        help="artifact-cache directory (compiled programs and "
        f"execution plans; default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the artifact cache entirely (no reads, no writes)",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the orchestrator (default 1: serial; "
        "results are identical at any N)",
    )


def _setup_cache(args: argparse.Namespace) -> None:
    import os

    from .runner.cache import configure_cache

    # REPRO_NO_CACHE disables caching for library use (see
    # repro.runner.cache); honor it for CLI runs too.
    disabled = bool(
        getattr(args, "no_cache", False) or os.environ.get("REPRO_NO_CACHE")
    )
    configure_cache(
        getattr(args, "cache_dir", None), enabled=not disabled
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "workload",
        help="Table-I workload name (e.g. tretail) or a DAG file "
        "(.json / edge list)",
    )
    parser.add_argument(
        "--config", default="D3-B64-R32",
        help="architecture point, default: the paper's min-EDP design",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help="workload regeneration scale (named workloads only)",
    )
    parser.add_argument("--seed", type=int, default=0)


def cmd_compile(args: argparse.Namespace) -> int:
    dag = _resolve_workload(args.workload, args.scale)
    config = _parse_config(args.config)
    result = compile_dag(
        dag,
        config,
        seed=args.seed,
        partition_threshold=args.partition_threshold,
        jobs=args.jobs or 1,
    )
    s = result.stats
    print(f"workload : {dag.name} ({s.num_nodes} nodes, "
          f"{s.num_operations} binary ops)")
    print(f"config   : {config} ({config.num_pes} PEs)")
    if s.pieces:
        print(f"pieces   : {s.pieces} partitions "
              f"(<= {args.partition_threshold} nodes each, "
              f"jobs={args.jobs or 1})")
    print(f"blocks   : {s.num_blocks} (PE utilization "
          f"{100 * s.pe_utilization:.0f}%)")
    print(f"program  : {result.total_instructions} instructions "
          f"(exec {s.exec_instructions}, copy {s.copy_instructions}, "
          f"load {s.load_instructions}, store {s.store_instructions}, "
          f"nop {s.nop_instructions})")
    print(f"conflicts: {s.bank_conflicts}   spills: {s.spills}")
    print(f"compile  : {s.compile_seconds:.2f}s")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import random

    import numpy as np

    from .runner.cache import cached_compile

    _setup_cache(args)
    dag = _resolve_workload(args.workload, args.scale)
    config = _parse_config(args.config)
    result = cached_compile(dag, config, seed=args.seed, validate_input=True)
    ops = result.stats.num_operations

    if args.batch < 0:
        raise SystemExit(
            f"--batch must be >= 0 (0 disables batching), got {args.batch}"
        )
    if args.batch > 0:
        return _run_batched(args, dag, config, result, ops)

    rng = random.Random(args.seed)
    inputs = [rng.uniform(0.9, 1.1) for _ in range(dag.num_inputs)]
    sim = run_program(result.program, inputs)
    golden = evaluate_dag(dag, inputs)

    errors = 0
    for node in dag.sinks():
        var = result.node_map[node]
        if not np.isclose(sim.values[var], golden[node], equal_nan=True):
            errors += 1
    gops = ops / (sim.cycles / config.frequency_hz) / 1e9
    print(f"{dag.name}: {sim.cycles} cycles, {gops:.2f} GOPS @"
          f"{config.frequency_hz / 1e6:.0f}MHz")
    if errors:
        print(f"FAILED: {errors} output mismatches vs golden model")
        return 1
    print(f"verified: all {len(dag.sinks())} outputs match the golden "
          "model")
    return 0


def _run_batched(args, dag: DAG, config, result, ops: int) -> int:
    """``run --batch N``: plan once, sweep N rows, spot-check golden."""
    import numpy as np

    from .runner.cache import cached_plan
    from .sim import BatchSimulator, batch_perf_report

    plan = cached_plan(result)  # phase 1: verified lowering (memoized)
    rng = np.random.default_rng(args.seed)
    matrix = rng.uniform(0.9, 1.1, size=(args.batch, dag.num_inputs))
    batch = BatchSimulator(plan).run(matrix)  # phase 2: vector sweep
    perf = batch_perf_report(
        dag.name, config, ops, plan.cycles_per_row, batch.batch,
        host_seconds=batch.host_seconds,
    )

    from .graphs import OpType

    errors = 0
    checked = min(batch.batch, 8)
    for row in range(checked):
        golden = evaluate_dag(dag, list(matrix[row]))
        for node in dag.sinks():
            if dag.op(node) is OpType.INPUT:
                continue  # pass-through inputs are never stored
            var = result.node_map[node]
            if var not in batch.outputs:
                errors += 1  # a computed sink must reach data memory
            elif not np.isclose(
                batch.outputs[var][row], golden[node], equal_nan=True
            ):
                errors += 1
    print(f"{dag.name}: batch {batch.batch}, {plan.cycles_per_row} "
          f"cycles/row, {perf.throughput_gops:.2f} GOPS @"
          f"{config.frequency_hz / 1e6:.0f}MHz "
          f"({perf.rows_per_second:,.0f} rows/s on device)")
    print(f"host sweep: {batch.host_seconds * 1e3:.1f}ms "
          f"({batch.host_rows_per_second:,.0f} rows/s simulated)")
    if errors:
        print(f"FAILED: {errors} output mismatches vs golden model "
              f"across {checked} checked rows")
        return 1
    print(f"verified: {checked}/{batch.batch} rows spot-checked against "
          "the golden model")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .experiments.common import measure

    _setup_cache(args)
    config = _parse_config(args.config)
    rows = []
    for name in workload_names(("pc", "sptrsv")):
        dag = build_workload(name, scale=args.scale)
        m = measure(dag, config, seed=args.seed)
        rows.append(
            (
                name,
                dag.num_nodes,
                m.counters.cycles,
                round(m.throughput_gops, 2),
                round(m.energy.energy_per_op_pj, 1),
                m.compile_result.stats.bank_conflicts,
            )
        )
    print(
        format_table(
            ["workload", "nodes", "cycles", "GOPS", "pJ/op", "conflicts"],
            rows,
            title=f"suite @ scale {args.scale} on {config}",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Fig. 11 DSE through the parallel orchestrator + artifact cache.

    Also serves the ``dse`` subcommand (same wiring, no
    ``--workloads`` flag).
    """
    from .errors import WorkloadError
    from .experiments import fig11_dse
    from .workloads import get_spec

    _setup_cache(args)
    requested = tuple(
        name.strip()
        for name in getattr(args, "workloads", "").split(",")
        if name.strip()
    )
    names = requested or fig11_dse.DEFAULT_DSE_WORKLOADS
    from .workloads import GROUPS

    for name in names:
        if name in GROUPS:
            continue  # expanded by the sweep itself
        try:
            get_spec(name)
        except WorkloadError as exc:
            raise SystemExit(str(exc))
    experiment = fig11_dse.run(
        workload_names=names,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        progress=sys.stderr.isatty(),
    )
    print(fig11_dse.render(experiment))
    return 0


def cmd_all(args: argparse.Namespace) -> int:
    """Every figure/table experiment, fanned out over worker processes."""
    from .runner.registry import experiment_names, run_all

    _setup_cache(args)
    only = args.only.split(",") if args.only else None
    if only:
        unknown = [n for n in only if n not in experiment_names()]
        if unknown:
            raise SystemExit(
                f"unknown experiments {unknown}; choose from: "
                + ", ".join(experiment_names())
            )
    runs = run_all(
        names=only,
        jobs=args.jobs,
        golden=args.quick,
        progress=sys.stderr.isatty(),
    )
    for name, run in runs.items():
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(run.rendered)
        print()
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: synthetic scenarios x executor cross-check.

    Exit status 0 means every scenario agreed across the reference
    interpreter, scalar simulator, batch engine, analytic counters and
    the warm-cache path; 1 means at least one mismatch was found (and
    shrunk to a replayable case under ``--out-dir``).
    """
    from .errors import VerificationError
    from .verify import fuzz

    _setup_cache(args)
    families = tuple(
        name.strip() for name in args.families.split(",") if name.strip()
    )
    try:
        report = fuzz(
            budget=args.budget,
            seed=args.seed,
            jobs=args.jobs,
            families=families or None,
            fault=args.inject_fault or None,
            write_artifacts=not args.no_artifacts,
            out_dir=args.out_dir,
            progress=sys.stderr.isatty(),
        )
    except VerificationError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    return 0 if report.ok else 1


def cmd_encode(args: argparse.Namespace) -> int:
    dag = _resolve_workload(args.workload, args.scale)
    config = _parse_config(args.config)
    result = compile_dag(dag, config, seed=args.seed)
    encoded = encode_program(result.program, result.allocation.read_addrs)
    out = Path(args.output)
    out.write_bytes(encoded.data)
    print(f"{encoded.total_bits} bits "
          f"({encoded.instruction_count} instructions, "
          f"IL={encoded.widths.il}b) -> {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DPU-v2 reproduction: compile/run irregular DAGs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and print statistics")
    _add_common(p)
    p.add_argument(
        "--partition-threshold", type=int, default=None, metavar="N",
        help="split DAGs larger than N nodes GRAPHOPT-style and "
        "compile the partitions independently (paper uses ~20000)",
    )
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile, simulate, verify")
    _add_common(p)
    p.add_argument(
        "--batch", type=int, default=0, metavar="N",
        help="execute N random input rows through the two-phase "
        "plan/execute engine instead of the scalar reference simulator",
    )
    _add_cache_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("suite", help="fig. 14-style suite table")
    p.add_argument("--config", default="D3-B64-R32")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--seed", type=int, default=0)
    _add_cache_args(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("dse", help="fig. 11 design-space exploration")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "sweep",
        help="fig. 11 DSE via the parallel orchestrator + artifact cache",
    )
    p.add_argument(
        "--workloads", default="", metavar="A,B,...",
        help="comma-separated Table-I workload names "
        "(default: the fig. 11 set)",
    )
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "all", help="run every figure/table experiment"
    )
    p.add_argument(
        "--only", default="", metavar="A,B,...",
        help="comma-separated experiment names (see repro.runner)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="reduced-scale parameters (the regression-test goldens)",
    )
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_all)

    p = sub.add_parser(
        "fuzz",
        help="differential verification over synthetic scenarios",
    )
    p.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="number of generated scenarios to cross-check (default 200)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="master seed; (budget, seed) replays the identical campaign",
    )
    p.add_argument(
        "--families", default="", metavar="A,B,...",
        help="restrict to these generator families "
        "(default: all of repro.workloads.synth)",
    )
    p.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="where shrunk repro cases are written "
        "(default results/repro_cases/)",
    )
    p.add_argument(
        "--no-artifacts", action="store_true",
        help="report mismatches without writing repro-case files",
    )
    p.add_argument(
        "--inject-fault", default="", metavar="NAME",
        help="deliberately corrupt one executor to demo the harness "
        "(see repro.verify.FAULTS)",
    )
    _add_jobs_arg(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("encode", help="emit the packed binary program")
    _add_common(p)
    p.add_argument("--output", default="program.bin")
    p.set_defaults(func=cmd_encode)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
