"""GPU baseline (cuSPARSE-style level-scheduled SpTRSV / PC, [30], [35]).

The paper benchmarks an RTX 2080Ti running level-set parallelization:
one kernel (or one grid-sync step) per DAG level, each level's nodes
processed in parallel.  Two mechanisms dominate, both encoded here:

* **Per-level launch/sync latency**: every level pays a fixed
  kernel-launch / device-synchronization cost, so deep DAGs with
  hundreds of levels spend milliseconds doing nothing — this is why
  the GPU *loses to the CPU* below ~100k nodes (fig. 1(c)).
* **Uncoalesced gathers**: operand reads within a level hit random
  addresses; effective bandwidth is a small fraction of peak, and each
  4B operand drags a 32B memory transaction sector.

Model::

    t = levels * launch_seconds
      + sum_level max(width * cycles_per_op / (f * parallel_lanes),
                      width * sector_bytes * 2 / bandwidth)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs import DAG, width_profile
from .common import PlatformResult


@dataclass(frozen=True)
class GPUModel:
    """Analytic RTX 2080Ti model (Table III column: GPU)."""

    name: str = "GPU"
    frequency_hz: float = 1.35e9
    launch_seconds: float = 2.2e-6  # kernel launch + level sync
    parallel_lanes: int = 2176  # active scalar lanes usable
    cycles_per_op: float = 8.0  # dependent loads + FP op per node
    sector_bytes: int = 32  # uncoalesced transaction granularity
    bandwidth_bytes: float = 616e9  # Table III: 616 GB/s
    bandwidth_efficiency: float = 0.25  # random-access derating
    power_w: float = 98.0  # Table III (small suite)

    def run(self, dag: DAG) -> PlatformResult:
        """Estimate one evaluation via level-set execution."""
        widths = width_profile(dag)
        ops = dag.num_operations
        total = 0.0
        effective_bw = self.bandwidth_bytes * self.bandwidth_efficiency
        for width in widths:
            if width == 0:
                continue
            compute = (
                width
                * self.cycles_per_op
                / (self.frequency_hz * self.parallel_lanes)
            )
            memory = width * 2 * self.sector_bytes / effective_bw
            total += self.launch_seconds + max(compute, memory)
        return PlatformResult(
            platform=self.name,
            workload=dag.name,
            operations=ops,
            seconds=total,
            power_w=self.power_w,
        )
