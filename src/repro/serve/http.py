"""Minimal stdlib HTTP/1.1 front end for the inference service.

The container image carries no web framework, and the service needs
only three routes — so this module speaks just enough HTTP over
:func:`asyncio.start_server` for ``curl``, the ``repro loadgen``
client and CI to talk to it:

* ``POST /infer`` — body ``{"program": key, "inputs": [...],
  "tenant": ..., "deadline_ms": ...}``; responds with the
  :class:`~repro.serve.service.InferenceResponse` as JSON.  Float
  outputs survive the JSON round-trip **bitwise** (Python serializes
  floats via shortest-round-trip repr), which is what lets the load
  generator assert served-vs-direct parity across the wire.
* ``GET /stats`` — service totals + batcher histogram.
* ``GET /metrics`` — Prometheus text exposition (service counters,
  latency/batch-size histograms, process-wide compiler/engine
  metrics).
* ``GET /healthz`` — readiness probe listing registered programs.

Every ``/infer`` response carries the request's correlation id both
in the JSON payload (``request_id``) and as an
``X-Repro-Request-Id`` response header; clients may supply their own
via the same header (or body field), and the service generates one
otherwise.

Connections are keep-alive by default (the load generator reuses one
connection per in-flight lane); malformed requests get a 400 and the
connection is closed.  :class:`HttpClient` is the matching tiny
client used by ``repro loadgen``.
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ServeError
from .service import InferenceResponse, InferenceService

_MAX_BODY = 8 * 1024 * 1024
_MAX_HEADER_LINES = 64


def response_to_json(response: InferenceResponse) -> dict:
    """Wire form of a response (output keys become JSON strings)."""
    return {
        "id": response.id,
        "program": response.program,
        "tenant": response.tenant,
        "status": response.status,
        "outputs": (
            None
            if response.outputs is None
            else {str(node): value for node, value in response.outputs.items()}
        ),
        "batch": response.batch,
        "rows": response.rows,
        "queue_ms": round(response.queue_s * 1e3, 6),
        "total_ms": round(response.total_s * 1e3, 6),
        "error": response.error,
        "request_id": response.request_id,
    }


def connection_closes(value: str | None, default: str = "keep-alive") -> bool:
    """Whether a ``Connection`` header value asks to close.

    Per RFC 9110 the value is a case-insensitive, comma-separated
    token list — ``Close``, ``close``, and ``keep-alive, Close`` all
    mean close.  ``None`` falls back to ``default`` (HTTP/1.1
    connections persist unless told otherwise).
    """
    if value is None:
        value = default
    return "close" in {
        token.strip().lower() for token in value.split(",")
    }


class _BadRequest(Exception):
    pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; ``None`` on clean EOF (client went away)."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("ascii").split()
    except ValueError:
        raise _BadRequest("malformed request line")
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise _BadRequest("malformed header")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _BadRequest("too many headers")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise _BadRequest("bad content-length")
        if not 0 <= n <= _MAX_BODY:
            raise _BadRequest("body too large")
        body = await reader.readexactly(n)
    return method, target, headers, body


def _encode_response(
    status: int,
    payload: dict | str,
    keep_alive: bool,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one response.  Dict payloads go out as JSON; string
    payloads as Prometheus-flavored text/plain (the /metrics route)."""
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 503: "Service Unavailable"}
    if isinstance(payload, str):
        body = payload.encode()
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = (json.dumps(payload) + "\n").encode()
        content_type = "application/json"
    extra = "".join(
        f"{name}: {value}\r\n"
        for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        f"\r\n"
    ).encode("ascii")
    return head + body


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def parse_infer_body(body: bytes) -> dict:
    """Validate and decode a ``POST /infer`` body.

    ``inputs`` is a flat list of numbers (one row) or a list of such
    lists (a multi-row request).  Returns the submission kwargs;
    raises :class:`_BadRequest` on anything malformed.
    """
    try:
        doc = json.loads(body.decode())
        if not isinstance(doc, dict):
            raise _BadRequest("/infer body must be a JSON object")
        program = doc["program"]
        inputs = doc["inputs"]
        tenant = doc.get("tenant", "default")
        deadline_ms = doc.get("deadline_ms")
        max_wait_ms = doc.get("max_wait_ms")
        request_id = doc.get("request_id")
        if not isinstance(program, str):
            raise _BadRequest("program must be a string")
        if not isinstance(tenant, str):
            raise _BadRequest("tenant must be a string")
        if request_id is not None and not isinstance(request_id, str):
            raise _BadRequest("request_id must be a string")
        flat_row = isinstance(inputs, list) and all(
            _is_number(v) for v in inputs
        )
        multi_row = (
            isinstance(inputs, list)
            and len(inputs) >= 1
            and all(
                isinstance(row, list) and all(_is_number(v) for v in row)
                for row in inputs
            )
        )
        if not (flat_row or multi_row):
            raise _BadRequest(
                "inputs must be a list of numbers or a list of rows"
            )
        for knob, name in ((deadline_ms, "deadline_ms"),
                           (max_wait_ms, "max_wait_ms")):
            if knob is not None and not _is_number(knob):
                raise _BadRequest(f"{name} must be a number")
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise _BadRequest(f"malformed /infer body: {exc}")
    return {
        "program": program,
        "inputs": inputs,
        "tenant": tenant,
        "deadline_s": None if deadline_ms is None else deadline_ms / 1e3,
        "max_wait_s": None if max_wait_ms is None else max_wait_ms / 1e3,
        "request_id": request_id,
    }


#: Correlation-id header, echoed on every /infer response.
REQUEST_ID_HEADER = "X-Repro-Request-Id"


def header_request_id(headers: dict[str, str] | None) -> str | None:
    """Pull the correlation id out of parsed (lowercased) headers."""
    if not headers:
        return None
    value = headers.get(REQUEST_ID_HEADER.lower())
    return value or None


async def _handle_infer(
    service: InferenceService,
    body: bytes,
    headers: dict[str, str] | None = None,
) -> dict:
    kwargs = parse_infer_body(body)
    # The header wins over the body field: proxies (the shard router)
    # forward the header without re-encoding the body.
    kwargs["request_id"] = (
        header_request_id(headers) or kwargs["request_id"]
    )
    response = await service.submit(**kwargs)
    return response_to_json(response)


def service_dispatch(service: InferenceService):
    """The inference service's route table as a dispatch callable.

    ``dispatch(method, target, body, headers=None) ->
    (status, payload)`` — the shape :func:`handle_connection` drives,
    and what lets the shard router expose the *same* wire protocol
    (plus admin routes) from a different implementation.  ``payload``
    is a JSON-able dict, or a pre-rendered string for text routes
    (``/metrics``).
    """

    async def dispatch(
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ):
        if method == "POST" and target == "/infer":
            return 200, await _handle_infer(service, body, headers)
        if method == "GET" and target == "/stats":
            return 200, service.stats_dict()
        if method == "GET" and target == "/metrics":
            return 200, service.metrics_text()
        if method == "GET" and target == "/healthz":
            return 200, {"ok": True, "programs": service.programs()}
        if target in ("/infer", "/stats", "/metrics", "/healthz"):
            return 405, {"error": "method not allowed"}
        return 404, {"error": f"no route {target}"}

    return dispatch


async def handle_connection(
    service_or_dispatch,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    dispatch = (
        service_dispatch(service_or_dispatch)
        if isinstance(service_or_dispatch, InferenceService)
        else service_or_dispatch
    )
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except (_BadRequest, asyncio.IncompleteReadError):
                writer.write(_encode_response(
                    400, {"error": "malformed request"}, False
                ))
                break
            if parsed is None:
                break
            method, target, headers, body = parsed
            keep_alive = not connection_closes(headers.get("connection"))
            try:
                status, payload = await dispatch(
                    method, target, body, headers
                )
            except _BadRequest as exc:
                payload, status, keep_alive = {"error": str(exc)}, 400, False
            except ServeError as exc:
                payload, status = {"error": str(exc)}, 503
            extra_headers = None
            if isinstance(payload, dict) and payload.get("request_id"):
                extra_headers = {
                    REQUEST_ID_HEADER: str(payload["request_id"])
                }
            writer.write(
                _encode_response(status, payload, keep_alive, extra_headers)
            )
            await writer.drain()
            if not keep_alive:
                break
    except asyncio.CancelledError:
        # Server shutdown with the connection parked on keep-alive:
        # end the handler task cleanly (a cancelled task makes the
        # streams machinery log spurious tracebacks).
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass


async def start_http_server(
    service_or_dispatch, host: str = "127.0.0.1", port: int = 8321
) -> asyncio.base_events.Server:
    """Bind a service (or a bare dispatch callable) to a listening
    socket; returns the server (close via ``server.close()`` +
    ``await server.wait_closed()``)."""

    async def handler(reader, writer):
        await handle_connection(service_or_dispatch, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


class HttpClient:
    """Tiny keep-alive JSON-over-HTTP client (the loadgen's legs).

    One client = one connection = one in-flight request at a time;
    the load generator opens one client per concurrency lane.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        """One round-trip; reconnects once on a dropped keep-alive."""
        for attempt in (0, 1):
            await self._connect()
            try:
                return await self._roundtrip(
                    method, path, payload, headers
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _roundtrip(
        self,
        method: str,
        path: str,
        payload: dict | None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"{extra}"
            f"\r\n"
        ).encode("ascii")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("ascii", "replace").split(maxsplit=2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw_body = await self._reader.readexactly(length)
        doc = json.loads(raw_body.decode()) if raw_body else {}
        if connection_closes(headers.get("connection")):
            await self.close()
        return status, doc

    async def infer(
        self,
        program: str,
        inputs: list[float] | list[list[float]],
        tenant: str = "default",
        deadline_ms: float | None = None,
        max_wait_ms: float | None = None,
        request_id: str | None = None,
    ) -> dict:
        payload = {"program": program, "inputs": inputs, "tenant": tenant}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if max_wait_ms is not None:
            payload["max_wait_ms"] = max_wait_ms
        headers = (
            {REQUEST_ID_HEADER: request_id} if request_id else None
        )
        _status, doc = await self.request(
            "POST", "/infer", payload, headers
        )
        return doc

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None
