"""Campaign ledger: framing, checksums, torn-line tolerance."""

from __future__ import annotations

import json
import os

import pytest

from repro.runner.ledger import (
    CampaignLedger,
    LedgerError,
    decode_line,
    encode_record,
    read_json,
    write_json_atomic,
)


class TestRecordCodec:
    def test_round_trip(self):
        record = {"type": "complete", "task": 7, "worker": "ab-w0"}
        line = encode_record(record)
        assert line.startswith(b"\n")
        assert decode_line(line.lstrip(b"\n")) == record

    def test_canonical_json_is_key_sorted_and_compact(self):
        line = encode_record({"b": 1, "a": 2})
        payload = line.lstrip(b"\n").rpartition(b"|")[0]
        assert payload == b'{"a":2,"b":1}'

    def test_corrupted_payload_fails_checksum(self):
        line = encode_record({"task": 3}).lstrip(b"\n")
        flipped = bytearray(line)
        flipped[2] ^= 0xFF
        assert decode_line(bytes(flipped)) is None

    def test_truncated_line_is_rejected(self):
        line = encode_record({"task": 3}).lstrip(b"\n")
        for cut in range(1, len(line)):
            assert decode_line(line[:cut]) is None

    def test_non_dict_payload_is_rejected(self):
        import hashlib

        payload = b"[1,2,3]"
        digest = hashlib.blake2b(payload, digest_size=12).hexdigest()
        assert decode_line(payload + b"|" + digest.encode()) is None

    def test_empty_and_garbage_lines(self):
        assert decode_line(b"") is None
        assert decode_line(b"no separator here") is None
        assert decode_line(b"garbage|notahexdigest") is None


class TestCampaignLedger:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with CampaignLedger(path) as ledger:
            for i in range(5):
                ledger.append({"type": "enqueue", "task": i})
        records, torn = CampaignLedger(path).replay()
        assert torn == 0
        assert [r["task"] for r in records] == list(range(5))

    def test_torn_tail_self_heals(self, tmp_path):
        """A writer dying mid-record leaves a half line; the next
        writer's leading newline isolates it, so every other record
        still parses and the tear is counted, not fatal."""
        path = tmp_path / "ledger.jsonl"
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "claim", "task": 0})
            full = encode_record({"type": "complete", "task": 0})
            with open(path, "ab") as fh:  # torn: half a record
                fh.write(full[: len(full) // 2])
        with CampaignLedger(path) as ledger:  # a later writer
            ledger.append({"type": "claim", "task": 1})
        records, torn = CampaignLedger(path).replay()
        assert torn == 1
        assert [(r["type"], r["task"]) for r in records] == [
            ("claim", 0),
            ("claim", 1),
        ]

    def test_torn_line_mid_file_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = CampaignLedger(path)
        ledger.append({"task": 0})
        ledger.append({"task": 1})
        ledger.close()
        # Corrupt the *first* record in place: replay must still
        # deliver the second.
        raw = bytearray(path.read_bytes())
        raw[3] ^= 0xFF
        path.write_bytes(bytes(raw))
        records, torn = CampaignLedger(path).replay()
        assert torn == 1
        assert [r["task"] for r in records] == [1]

    def test_tear_hook_truncates_the_write(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = CampaignLedger(path, tear_hook=lambda rec, data: 5)
        ledger.append({"type": "claim", "task": 9})
        ledger.close()
        assert path.stat().st_size == 5
        records, torn = CampaignLedger(path).replay()
        assert records == [] and torn == 1

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        records, torn = CampaignLedger(tmp_path / "absent.jsonl").replay()
        assert records == [] and torn == 0

    def test_append_to_unwritable_path_raises_ledger_error(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        with pytest.raises(LedgerError):
            CampaignLedger(target).append({"task": 0})

    def test_iter_yields_intact_records(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = CampaignLedger(path)
        ledger.append({"task": 1})
        ledger.append({"task": 2})
        ledger.close()
        assert [r["task"] for r in CampaignLedger(path)] == [1, 2]

    def test_concurrent_appenders_never_interleave(self, tmp_path):
        """Two descriptors appending to one ledger (coordinator plus
        worker is the production shape): every record survives."""
        path = tmp_path / "ledger.jsonl"
        a, b = CampaignLedger(path), CampaignLedger(path)
        for i in range(20):
            (a if i % 2 else b).append({"task": i})
        a.close(), b.close()
        records, torn = CampaignLedger(path).replay()
        assert torn == 0
        assert sorted(r["task"] for r in records) == list(range(20))


class TestAtomicJsonHelpers:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"a": 1})
        assert read_json(path) == {"a": 1}
        # No tmp residue after a clean write.
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"v": 1})
        write_json_atomic(path, {"v": 2})
        assert read_json(path) == {"v": 2}

    def test_read_json_tolerates_missing_torn_garbage(self, tmp_path):
        assert read_json(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_bytes(b'{"half": ')
        assert read_json(bad) is None
        bad.write_bytes(json.dumps([1, 2]).encode())  # non-dict
        assert read_json(bad) is None

    def test_failed_write_leaves_no_tmp(self, tmp_path, monkeypatch):
        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            write_json_atomic(tmp_path / "doc.json", {"a": 1})
        assert list(tmp_path.iterdir()) == []
