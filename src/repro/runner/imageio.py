"""Dense binary artifact images for compiled programs and plans.

Pickles are convenient but fragile (Python-version coupled) and bulky
(per-array headers, framing).  This module serializes the two artifact
kinds the cache stores — compiled :class:`~repro.arch.Program` objects
and lowered :class:`~repro.sim.plan.ExecutionPlan` objects — as dense
little-endian binary images:

``header | section table | aligned section data``

* **Header** (32 bytes): magic ``RIMG``, format version, artifact
  kind, section count, payload length and a BLAKE2b-64 checksum of the
  payload (table + data).  A failed checksum, bad magic or truncation
  raises :class:`~repro.errors.ImageError` — the cache maps that to a
  miss, exactly like a torn pickle.
* **Section table**: 32 bytes per section — an 8-byte ASCII tag, file
  offset, byte length and a dtype code.
* **Sections**: a compact JSON metadata blob, raw byte blobs (the
  packed instruction bitstream) and numpy array payloads.  Array
  sections are 64-byte aligned so a reader can map the file with
  :mod:`mmap` and expose every array as a **zero-copy**
  ``np.frombuffer`` view — the serve plan pool loads plans this way.

Plan images pool every ``int32`` index array into one section; the
metadata records only each array's length, in a fixed traversal order,
so reconstruction is a cursor walk over one buffer.

Program images store the *encoded bitstream itself* (the fig. 7
variable-length binary) plus the compiler-only sidecars the hardware
never sees: variable tags, exec block ids and crossbar port-use masks
(a port muxing bank 0 and an unused port encode the same bits, so the
mask is what keeps ``port_source`` — and with it the analytic crossbar
counters — exact through a round-trip).  ``load_program`` therefore
runs the real decoder: an image round-trip *is* an
encode→decode→reassemble proof, which the differential oracle's
``image-roundtrip`` stage executes and compares bitwise.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import mmap
import struct
from pathlib import Path

import numpy as np

from ..arch import (
    ArchConfig,
    CopyInstr,
    CopyMove,
    EncodedProgram,
    ExecInstr,
    Interconnect,
    LoadInstr,
    NopInstr,
    Program,
    StoreInstr,
    StoreSlot,
    Topology,
    WriteSpec,
    decode_program,
    encode_program,
    instruction_widths,
)
from ..errors import ImageError
from ..sim.functional import ActivityCounters
from ..sim.plan import ComputeStep, ExecutionPlan, MoveStep

MAGIC = b"RIMG"
IMAGE_VERSION = 1
KIND_PLAN = 1
KIND_PROGRAM = 2

_HEADER = struct.Struct("<4sHHIQQ4x")  # magic ver kind nsect paylen cksum
_SECTION = struct.Struct("<8sQQB7x")  # tag offset length dtype
_ALIGN = 64

#: Section dtype codes: 0 = raw bytes (incl. JSON), else a numpy dtype.
_DTYPES: dict[int, np.dtype | None] = {
    0: None,
    1: np.dtype("<i4"),
    2: np.dtype("<i8"),
    3: np.dtype("<f8"),
    4: np.dtype("u1"),
}
_DTYPE_CODE = {dt: code for code, dt in _DTYPES.items() if dt is not None}

#: Fixed field order of a ComputeStep's index arrays.
_COMPUTE_FIELDS = (
    "add_out", "add_a", "add_b", "mul_out", "mul_a", "mul_b",
    "mov_out", "mov_src",
)


def _checksum(payload) -> int:
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "little"
    )


class _Builder:
    """Assembles one image: sections in, checksummed bytes out."""

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.sections: list[tuple[bytes, bytes, int]] = []

    def add(self, tag: str, data: bytes, dtype_code: int = 0) -> None:
        raw = tag.encode("ascii")
        if len(raw) > 8:
            raise ImageError(f"section tag {tag!r} longer than 8 bytes")
        self.sections.append((raw.ljust(8, b"\0"), data, dtype_code))

    def add_json(self, tag: str, obj) -> None:
        self.add(
            tag,
            json.dumps(obj, separators=(",", ":"), sort_keys=True).encode(),
        )

    def add_array(self, tag: str, arr: np.ndarray) -> None:
        arr = np.ascontiguousarray(arr)
        dt = np.dtype(arr.dtype.newbyteorder("<"))
        self.add(tag, arr.astype(dt, copy=False).tobytes(), _DTYPE_CODE[dt])

    def tobytes(self) -> bytes:
        n = len(self.sections)
        cursor = _HEADER.size + n * _SECTION.size
        table = []
        blobs = []
        for tag, data, code in self.sections:
            pad = (-cursor) % _ALIGN
            blobs.append(b"\0" * pad)
            cursor += pad
            table.append(_SECTION.pack(tag, cursor, len(data), code))
            blobs.append(data)
            cursor += len(data)
        payload = b"".join(table) + b"".join(blobs)
        header = _HEADER.pack(
            MAGIC, IMAGE_VERSION, self.kind, n, len(payload),
            _checksum(payload),
        )
        return header + payload


class Image:
    """Parsed image over a bytes-like buffer (``bytes`` or ``mmap``).

    Array sections come back as ``np.frombuffer`` views into the
    buffer — no copy; the arrays keep the buffer (and any underlying
    mmap) alive through their ``base`` chain.
    """

    def __init__(self, buf) -> None:
        self._buf = buf
        view = memoryview(buf)
        if len(view) < _HEADER.size:
            raise ImageError("image truncated: no header")
        magic, version, kind, nsect, paylen, cksum = _HEADER.unpack_from(
            view, 0
        )
        if magic != MAGIC:
            raise ImageError(f"bad image magic {magic!r}")
        if version != IMAGE_VERSION:
            raise ImageError(f"unsupported image version {version}")
        if len(view) < _HEADER.size + paylen:
            raise ImageError("image truncated: payload shorter than header "
                             "says")
        payload = view[_HEADER.size:_HEADER.size + paylen]
        if _checksum(payload) != cksum:
            raise ImageError("image checksum mismatch")
        self.kind = kind
        self._view = view
        self.sections: dict[str, tuple[int, int, int]] = {}
        for i in range(nsect):
            tag, offset, length, code = _SECTION.unpack_from(
                view, _HEADER.size + i * _SECTION.size
            )
            if offset + length > len(view) or code not in _DTYPES:
                raise ImageError("image section table out of bounds")
            self.sections[tag.rstrip(b"\0").decode("ascii")] = (
                offset, length, code,
            )

    def raw(self, tag: str) -> memoryview:
        try:
            offset, length, _ = self.sections[tag]
        except KeyError:
            raise ImageError(f"image has no {tag!r} section") from None
        return self._view[offset:offset + length]

    def json(self, tag: str):
        try:
            return json.loads(bytes(self.raw(tag)))
        except ValueError as exc:
            raise ImageError(f"malformed {tag!r} metadata: {exc}") from exc

    def array(self, tag: str) -> np.ndarray:
        offset, length, code = self.sections.get(tag, (0, 0, 0))
        if tag not in self.sections:
            raise ImageError(f"image has no {tag!r} section")
        dt = _DTYPES[code]
        if dt is None:
            raise ImageError(f"section {tag!r} is not an array")
        if length % dt.itemsize:
            raise ImageError(f"section {tag!r} length not a multiple of "
                             f"its dtype")
        return np.frombuffer(self._view, dtype=dt,
                             count=length // dt.itemsize, offset=offset)


def open_image(path: str | Path, use_mmap: bool = True) -> Image:
    """Open an image file, optionally via ``mmap`` (zero-copy arrays).

    Raises:
        ImageError: Malformed image (also wraps I/O and empty-file
            mapping failures, so callers need one except clause).
    """
    try:
        if use_mmap:
            with open(path, "rb") as fh:
                buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            return Image(buf)
        return Image(Path(path).read_bytes())
    except ImageError:
        raise
    except (OSError, ValueError) as exc:
        raise ImageError(f"cannot open image {path}: {exc}") from exc


def _config_dict(config: ArchConfig) -> dict:
    return dataclasses.asdict(config)


# ---------------------------------------------------------------------
# ExecutionPlan images
# ---------------------------------------------------------------------
def _plan_arrays(plan: ExecutionPlan):
    """The plan's int32 arrays, in the image's fixed traversal order."""
    yield plan.input_cells
    yield plan.input_slots
    yield plan.output_cells
    for step in plan.steps:
        if isinstance(step, MoveStep):
            yield step.src
            yield step.dst
        else:
            for name in _COMPUTE_FIELDS:
                yield getattr(step, name)


def dump_plan(plan: ExecutionPlan) -> bytes:
    """Serialize a lowered plan as one image blob."""
    steps_meta = []
    for step in plan.steps:
        if isinstance(step, MoveStep):
            steps_meta.append(["m", int(step.src.size), int(step.dst.size)])
        else:
            steps_meta.append(
                ["c"] + [int(getattr(step, n).size) for n in _COMPUTE_FIELDS]
            )
    meta = {
        "config": _config_dict(plan.config),
        "source_name": plan.source_name,
        "num_instructions": plan.num_instructions,
        "num_inputs": plan.num_inputs,
        "state_size": plan.state_size,
        "output_vars": [int(v) for v in plan.output_vars],
        "counters": dataclasses.asdict(plan.counters),
        "peak_occupancy": [int(v) for v in plan.peak_occupancy],
        "lead": [
            int(plan.input_cells.size),
            int(plan.input_slots.size),
            int(plan.output_cells.size),
        ],
        "steps": steps_meta,
    }
    arrays = list(_plan_arrays(plan))
    pool = (
        np.concatenate([np.asarray(a, dtype="<i4") for a in arrays])
        if arrays else np.empty(0, dtype="<i4")
    )
    builder = _Builder(KIND_PLAN)
    builder.add_json("meta", meta)
    builder.add_array("i32", pool)
    return builder.tobytes()


def load_plan(source: bytes | Image) -> ExecutionPlan:
    """Rebuild a plan from an image; arrays are views into the buffer.

    Raises:
        ImageError: Malformed/corrupt image or inconsistent metadata.
    """
    img = source if isinstance(source, Image) else Image(source)
    if img.kind != KIND_PLAN:
        raise ImageError(f"not a plan image (kind {img.kind})")
    meta = img.json("meta")
    pool = img.array("i32")
    cursor = 0

    def take(n: int) -> np.ndarray:
        nonlocal cursor
        if cursor + n > pool.size:
            raise ImageError("plan image array pool underrun")
        out = pool[cursor:cursor + n]
        cursor += n
        return out

    try:
        config = ArchConfig(**meta["config"])
        counters = ActivityCounters(**meta["counters"])
        n_in_cells, n_in_slots, n_out_cells = (
            int(n) for n in meta["lead"]
        )
        input_cells = take(n_in_cells)
        input_slots = take(n_in_slots)
        output_cells = take(n_out_cells)
        steps = []
        for rec in meta["steps"]:
            if rec[0] == "m":
                src = take(int(rec[1]))
                steps.append(MoveStep(src=src, dst=take(int(rec[2]))))
            elif rec[0] == "c":
                parts = [take(int(n)) for n in rec[1:]]
                steps.append(
                    ComputeStep(**dict(zip(_COMPUTE_FIELDS, parts)))
                )
            else:
                raise ImageError(f"unknown step kind {rec[0]!r}")
        plan = ExecutionPlan(
            config=config,
            source_name=meta["source_name"],
            num_instructions=int(meta["num_instructions"]),
            num_inputs=int(meta["num_inputs"]),
            state_size=int(meta["state_size"]),
            input_cells=input_cells,
            input_slots=input_slots,
            steps=tuple(steps),
            output_vars=tuple(int(v) for v in meta["output_vars"]),
            output_cells=output_cells,
            counters=counters,
            peak_occupancy=[int(v) for v in meta["peak_occupancy"]],
        )
    except ImageError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ImageError(f"malformed plan metadata: {exc}") from exc
    if cursor != pool.size:
        raise ImageError(
            f"plan image pool has {pool.size - cursor} unconsumed entries"
        )
    return plan


def write_plan_image(path: str | Path, plan: ExecutionPlan) -> Path:
    path = Path(path)
    path.write_bytes(dump_plan(plan))
    return path


def read_plan_image(path: str | Path, use_mmap: bool = True) -> ExecutionPlan:
    """Load a plan image from disk; with ``use_mmap`` the plan's index
    arrays are read-only zero-copy views over the mapped file."""
    return load_plan(open_image(path, use_mmap=use_mmap))


# ---------------------------------------------------------------------
# Program images
# ---------------------------------------------------------------------
def _sidecars(program: Program):
    """Variable tags / block ids / port masks the bitstream drops.

    The traversal order mirrors the decoder's field order exactly, so
    reassembly is a linear walk (see :func:`load_program`).
    """
    var_tags: list[int] = []
    block_ids: list[int] = []
    port_masks: list[int] = []
    for instr in program.instructions:
        if isinstance(instr, ExecInstr):
            var_tags.extend(v for _, v in sorted(instr.bank_reads))
            var_tags.extend(
                w.var for w in sorted(instr.writes, key=lambda w: w.bank)
            )
            block_ids.append(instr.block_id)
            mask = 0
            for port, src in enumerate(instr.port_source):
                if src is not None:
                    mask |= 1 << port
            port_masks.append(mask)
        elif isinstance(instr, CopyInstr):
            if instr.mnemonic == "copy_4":
                var_tags.extend(m.var for m in instr.moves)
            else:
                var_tags.extend(
                    m.var
                    for m in sorted(instr.moves, key=lambda m: m.src_bank)
                )
        elif isinstance(instr, LoadInstr):
            var_tags.extend(v for _, v in sorted(instr.dests))
        elif isinstance(instr, StoreInstr):
            if instr.mnemonic == "store_4":
                var_tags.extend(s.var for s in instr.slots)
            else:
                var_tags.extend(
                    s.var
                    for s in sorted(instr.slots, key=lambda s: s.bank)
                )
    return var_tags, block_ids, port_masks


def dump_program(
    program: Program,
    read_addrs: list[dict[int, int]],
    interconnect: Interconnect | None = None,
) -> bytes:
    """Serialize a compiled program: packed bitstream + sidecars."""
    inter = interconnect or Interconnect(program.config)
    encoded = encode_program(program, read_addrs, inter)
    var_tags, block_ids, port_masks = _sidecars(program)
    meta = {
        "config": _config_dict(program.config),
        "topology": inter.topology.value,
        "source_name": program.source_name,
        "num_data_rows": program.num_data_rows,
        "total_bits": encoded.total_bits,
        "input_layout": [
            [int(v), int(r), int(b)]
            for v, (r, b) in sorted(program.input_layout.items())
        ],
        "input_slots": [
            [int(v), int(s)] for v, s in sorted(program.input_slots.items())
        ],
        "output_layout": [
            [int(v), int(r), int(b)]
            for v, (r, b) in sorted(program.output_layout.items())
        ],
    }
    builder = _Builder(KIND_PROGRAM)
    builder.add_json("meta", meta)
    builder.add("bits", encoded.data)
    builder.add_array("lengths", np.asarray(encoded.lengths, dtype="<i4"))
    builder.add_array("vars", np.asarray(var_tags, dtype="<i4"))
    builder.add_array("blocks", np.asarray(block_ids, dtype="<i4"))
    builder.add_array("ports", np.asarray(port_masks, dtype="<i8"))
    return builder.tobytes()


def load_program(
    source: bytes | Image,
) -> tuple[Program, list[dict[int, int]]]:
    """Decode a program image back into the typed instruction IR.

    Runs the real bitstream decoder over the packed ``bits`` section,
    then reattaches the sidecar variable tags / block ids / port masks
    to rebuild :class:`~repro.arch.Program` instructions.  Returns the
    program plus the per-instruction resolved read addresses (so the
    caller can re-encode and assert bitstream stability).

    Raises:
        ImageError: Corrupt image or sidecar/bitstream disagreement.
    """
    img = source if isinstance(source, Image) else Image(source)
    if img.kind != KIND_PROGRAM:
        raise ImageError(f"not a program image (kind {img.kind})")
    meta = img.json("meta")
    try:
        config = ArchConfig(**meta["config"])
        inter = Interconnect(config, Topology(meta["topology"]))
        encoded = EncodedProgram(
            data=bytes(img.raw("bits")),
            total_bits=int(meta["total_bits"]),
            lengths=tuple(int(n) for n in img.array("lengths")),
            widths=instruction_widths(config, inter),
        )
        decoded = decode_program(encoded, config, inter)
    except ImageError:
        raise
    except Exception as exc:
        raise ImageError(f"undecodable program image: {exc}") from exc

    var_tags = img.array("vars")
    block_ids = img.array("blocks")
    port_masks = img.array("ports")
    cursor = {"var": 0, "block": 0, "port": 0}

    def next_of(kind: str, arr: np.ndarray) -> int:
        i = cursor[kind]
        if i >= arr.size:
            raise ImageError(f"program image {kind} sidecar underrun")
        cursor[kind] = i + 1
        return int(arr[i])

    instructions = []
    read_addrs: list[dict[int, int]] = []
    try:
        for dec in decoded:
            fields = dec.fields
            if dec.mnemonic == "nop":
                instructions.append(NopInstr())
                read_addrs.append({})
            elif dec.mnemonic == "exec":
                reads = fields["reads"]
                read_banks = [
                    b for b, r in enumerate(reads) if r is not None
                ]
                bank_reads = tuple(
                    (b, next_of("var", var_tags)) for b in read_banks
                )
                mask = next_of("port", port_masks)
                port_source = tuple(
                    src if (mask >> port) & 1 else None
                    for port, src in enumerate(fields["port_source"])
                )
                writes = tuple(
                    WriteSpec(pe=pe, bank=bank, var=next_of("var", var_tags))
                    for bank, pe in enumerate(fields["write_pe"])
                    if pe is not None
                )
                instructions.append(
                    ExecInstr(
                        bank_reads=bank_reads,
                        port_source=port_source,
                        pe_ops=fields["pe_ops"],
                        writes=writes,
                        valid_rst=frozenset(
                            b for b in read_banks if reads[b][1]
                        ),
                        block_id=next_of("block", block_ids),
                    )
                )
                read_addrs.append({b: reads[b][0] for b in read_banks})
            elif dec.mnemonic == "copy":
                reads = fields["reads"]
                src_var = {
                    b: next_of("var", var_tags)
                    for b, r in enumerate(reads)
                    if r is not None
                }
                moves = tuple(
                    CopyMove(
                        src_bank=src,
                        dst_bank=dst,
                        var=src_var[src],
                        free_source=reads[src][1],
                    )
                    for dst, src in enumerate(fields["dst_source"])
                    if src is not None
                )
                instructions.append(CopyInstr(moves=moves))
                read_addrs.append(
                    {b: reads[b][0] for b in src_var}
                )
            elif dec.mnemonic == "copy_4":
                moves = tuple(
                    CopyMove(
                        src_bank=src,
                        dst_bank=dst,
                        var=next_of("var", var_tags),
                        free_source=rst,
                    )
                    for src, dst, _addr, rst in fields["moves"]
                )
                instructions.append(CopyInstr(moves=moves))
                read_addrs.append(
                    {src: addr for src, _d, addr, _r in fields["moves"]}
                )
            elif dec.mnemonic == "load":
                dests = tuple(
                    (b, next_of("var", var_tags))
                    for b, on in enumerate(fields["enable"])
                    if on
                )
                instructions.append(
                    LoadInstr(row=fields["row"], dests=dests)
                )
                read_addrs.append({})
            elif dec.mnemonic == "store":
                reads = fields["reads"]
                slots = tuple(
                    StoreSlot(
                        bank=b,
                        var=next_of("var", var_tags),
                        free_source=reads[b][1],
                    )
                    for b, r in enumerate(reads)
                    if r is not None
                )
                instructions.append(
                    StoreInstr(row=fields["row"], slots=slots)
                )
                read_addrs.append(
                    {b: reads[b][0]
                     for b, r in enumerate(reads) if r is not None}
                )
            elif dec.mnemonic == "store_4":
                slots = tuple(
                    StoreSlot(
                        bank=bank,
                        var=next_of("var", var_tags),
                        free_source=rst,
                    )
                    for bank, _addr, rst in fields["slots"]
                )
                instructions.append(
                    StoreInstr(row=fields["row"], slots=slots)
                )
                read_addrs.append(
                    {bank: addr for bank, addr, _r in fields["slots"]}
                )
            else:  # pragma: no cover - decoder is exhaustive
                raise ImageError(f"unknown mnemonic {dec.mnemonic!r}")
        program = Program(
            config=config,
            instructions=tuple(instructions),
            input_layout={
                int(v): (int(r), int(b)) for v, r, b in meta["input_layout"]
            },
            input_slots={
                int(v): int(s) for v, s in meta["input_slots"]
            },
            output_layout={
                int(v): (int(r), int(b)) for v, r, b in meta["output_layout"]
            },
            num_data_rows=int(meta["num_data_rows"]),
            source_name=meta["source_name"],
        )
    except ImageError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ImageError(f"malformed program metadata: {exc}") from exc
    if cursor["var"] != var_tags.size:
        raise ImageError("program image has unconsumed variable tags")
    return program, read_addrs


def write_program_image(
    path: str | Path,
    program: Program,
    read_addrs: list[dict[int, int]],
    interconnect: Interconnect | None = None,
) -> Path:
    path = Path(path)
    path.write_bytes(dump_program(program, read_addrs, interconnect))
    return path


def read_program_image(
    path: str | Path, use_mmap: bool = False
) -> tuple[Program, list[dict[int, int]]]:
    return load_program(open_image(path, use_mmap=use_mmap))
