"""DAG substrate: containers, traversal, binarization, validation, IO."""

from .binarize import BinarizeResult, binarization_overhead, binarize
from .dag import DAG, DAGBuilder
from .io import (
    from_edge_list,
    from_json,
    from_networkx,
    load_json,
    relabel_topological,
    save_json,
    to_edge_list,
    to_json,
    to_networkx,
)
from .node import NodeRecord, OpType
from .partition import (
    Partitioning,
    boundary_values,
    check_partitioning,
    partition_topological,
)
from .stats import DagStats, dag_stats, fan_in_histogram, fan_out_histogram
from .traversal import (
    ancestors_within,
    arithmetic_longest_path,
    descendants_within,
    dfs_order,
    level_sets,
    longest_path_length,
    node_levels,
    reachable_from,
    topological_order,
    width_profile,
)
from .validate import check_acyclic, check_arities, validate

__all__ = [
    "DAG",
    "DAGBuilder",
    "NodeRecord",
    "OpType",
    "BinarizeResult",
    "binarize",
    "binarization_overhead",
    "DagStats",
    "dag_stats",
    "fan_in_histogram",
    "fan_out_histogram",
    "Partitioning",
    "partition_topological",
    "check_partitioning",
    "boundary_values",
    "topological_order",
    "node_levels",
    "level_sets",
    "longest_path_length",
    "arithmetic_longest_path",
    "dfs_order",
    "ancestors_within",
    "descendants_within",
    "reachable_from",
    "width_profile",
    "validate",
    "check_acyclic",
    "check_arities",
    "to_networkx",
    "from_networkx",
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "to_edge_list",
    "from_edge_list",
    "relabel_topological",
]
