#!/usr/bin/env python3
"""Quickstart: build a DAG, compile it for DPU-v2, simulate, verify.

Walks the full flow of the paper on a small hand-rolled expression
DAG, printing what each stage produced.

Run:  python examples/quickstart.py
"""

from repro import ArchConfig, DAGBuilder, compile_dag, run_program
from repro.graphs import binarize
from repro.sim import count_activity, energy_of_run, evaluate_dag, perf_report


def build_expression_dag():
    """(a+b)*(c+d) + (c+d)*e — note the shared subexpression."""
    b = DAGBuilder()
    a, bb, c, d, e = (b.add_input() for _ in range(5))
    s1 = b.add_add([a, bb])
    s2 = b.add_add([c, d])
    p1 = b.add_mul([s1, s2])
    p2 = b.add_mul([s2, e])
    root = b.add_add([p1, p2])
    return b.build("quickstart"), root


def main() -> None:
    dag, root = build_expression_dag()
    print(f"DAG: {dag.num_nodes} nodes, {dag.num_operations} operations")

    # 1. Pick an architecture point. D = tree depth, B = register
    #    banks, R = registers per bank (the paper's min-EDP design is
    #    D3-B64-R32; a small instance is plenty here).
    config = ArchConfig(depth=2, banks=8, regs_per_bank=16)
    print(f"target: {config} ({config.num_pes} PEs, "
          f"{config.num_trees} trees)")

    # 2. Compile: binarize -> blocks -> bank mapping -> schedule ->
    #    reorder -> spill -> addresses.
    result = compile_dag(dag, config)
    stats = result.stats
    print(
        f"compiled: {stats.num_blocks} blocks, "
        f"{result.total_instructions} instructions "
        f"({stats.exec_instructions} exec, {stats.nop_instructions} nop, "
        f"{stats.bank_conflicts} bank conflicts)"
    )

    # 3. Execute on the architectural simulator.
    inputs = [1.0, 2.0, 3.0, 4.0, 5.0]  # a..e
    sim = run_program(result.program, inputs)
    root_var = result.node_map[root]
    print(f"simulated in {sim.cycles} cycles; "
          f"root value = {sim.values[root_var]}")

    # 4. Check against the golden model.
    expected = evaluate_dag(dag, inputs)[root]
    assert sim.values[root_var] == expected, "simulation mismatch!"
    print(f"golden model agrees: (1+2)*(3+4) + (3+4)*5 = {expected}")

    # 5. Performance/energy reports (the paper's evaluation metrics).
    counters = count_activity(result.program)
    perf = perf_report(dag.name, config, stats.num_operations,
                       counters.cycles)
    energy = energy_of_run(config, counters, stats.num_operations)
    print(
        f"throughput {perf.throughput_gops:.3f} GOPS @300MHz, "
        f"{energy.energy_per_op_pj:.1f} pJ/op, "
        f"EDP {energy.edp_per_op:.1f} pJ*ns"
    )


if __name__ == "__main__":
    main()
