"""Step 4 — register spilling (§IV-D).

After reordering, the schedule is simulated against the automatic
write policy's occupancy semantics (reserve at issue, free at the
flagged last read).  Whenever a write would push a bank past its R
registers, values are spilled to data memory and reloaded before their
next use.

The data memory has a *vector* port (one row = one word per bank,
fig. 5(b)), so spill traffic is batched:

* an eviction stores a whole row in one ``store`` instruction — the
  overflowing bank's farthest-next-use resident plus the farthest
  resident of every other nearly-full bank (pre-empting their imminent
  overflows);
* a reload brings back, in one masked ``load``, every still-spilled
  lane of the row whose bank has headroom — co-evicted values have
  correlated next uses under the farthest-first policy, so row-granular
  reload rarely backfires.

Values are SSA (each variable is written once), so a memory lane stays
valid forever: re-spilling a value whose lane still holds it needs no
store at all — only the register free, which we get by storing it
again only when its lane was never written.

Insertions only ever lengthen producer->consumer gaps, so hazard
freedom from the reorder pass is preserved; the spill store's own read
is guarded by an in-flight check with ``nop`` aging as a last resort.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from ..arch import (
    ArchConfig,
    Instruction,
    LoadInstr,
    NopInstr,
    StoreInstr,
    StoreSlot,
    consumed_vars,
    produced_vars,
    result_latency,
)
from ..errors import SpillError
from .liveness import Residence, analyze_residences


@dataclass
class SpillResult:
    instructions: list[Instruction]
    spills: int  # spilled values
    reloads: int  # reloaded values
    spill_stores: int  # store instructions inserted
    spill_loads: int  # load instructions inserted
    nops_inserted: int
    num_rows: int  # total data-memory rows after spill slots


@dataclass
class _Resident:
    var: int
    valid_from: int  # output position where the value becomes readable
    next_reads: list[int]  # original instruction indices, ascending


class _SpillState:
    """Mutable bookkeeping for one spill pass."""

    def __init__(self, instrs: list[Instruction], config: ArchConfig,
                 next_row: int) -> None:
        self.config = config
        self.capacity = config.regs_per_bank
        self.occupants: list[dict[int, _Resident]] = [
            {} for _ in range(config.banks)
        ]
        self.out: list[Instruction] = []
        self.pending_reloads: dict[int, list[tuple[int, int]]] = {}
        self.row_counter = next_row
        # Spill locations, keyed by residence (bank, var): one
        # variable can live in several banks at once (conflict
        # temporaries), and each residence spills independently.
        self.lane_row: dict[tuple[int, int], int] = {}
        self.row_content: dict[int, dict[int, int]] = {}  # row -> bank->var
        self.spilled: set[tuple[int, int]] = set()
        self.spills = 0
        self.reloads = 0
        self.spill_stores = 0
        self.spill_loads = 0
        self.nops = 0
        # Read positions per (bank, var), ascending original indices.
        self.reads_by_key: dict[tuple[int, int], list[int]] = {}
        for idx, instr in enumerate(instrs):
            for bank, var in consumed_vars(instr):
                self.reads_by_key.setdefault((bank, var), []).append(idx)

    def reads_after(self, bank: int, var: int, idx: int) -> list[int]:
        reads = self.reads_by_key.get((bank, var), [])
        # ``reads`` is ascending, so the suffix starts at a bisect —
        # the old full scan made reload-heavy programs quadratic.
        return reads[bisect_left(reads, idx) :]

    def has_reads_after(self, bank: int, var: int, idx: int) -> bool:
        reads = self.reads_by_key.get((bank, var), [])
        return bisect_left(reads, idx) < len(reads)


def insert_spills(
    instrs: list[Instruction],
    config: ArchConfig,
    next_row: int,
    residences: list[Residence] | None = None,
) -> SpillResult:
    """Bound every bank's occupancy to R by spilling to data memory.

    Args:
        instrs: Liveness-annotated, reordered schedule.
        next_row: First data-memory row available for spill slots.
        residences: Precomputed residence analysis of ``instrs``
            (liveness flags do not change residence structure, so the
            pipeline reuses the annotation pass's analysis).
    """
    st = _SpillState(instrs, config, next_row)
    if residences is None:
        residences = analyze_residences(instrs)
    res_of_write: dict[tuple[int, int, int], tuple[int, ...]] = {
        (r.writer, r.bank, r.var): r.reads for r in residences
    }

    for idx, instr in enumerate(instrs):
        reads = consumed_vars(instr)
        read_vars = {var for _, var in reads}
        for bank, var in st.pending_reloads.pop(idx, []):
            if (bank, var) not in st.spilled:
                continue  # already brought back by a row-mate reload
            _emit_reload(st, bank, var, idx, protect=read_vars)

        rst_banks = instr.valid_rst
        for bank, var in reads:
            resident = st.occupants[bank].get(var)
            if resident is None:
                raise SpillError(
                    f"instr {idx} reads var {var} from bank {bank} but it "
                    "is not resident (spill bookkeeping bug)"
                )
            if resident.next_reads and resident.next_reads[0] == idx:
                resident.next_reads.pop(0)
            if bank in rst_banks:
                del st.occupants[bank][var]

        produced = produced_vars(instr)
        protect = read_vars | {var for _, var in produced}
        latency = result_latency(instr, config)
        for bank, var in produced:
            _make_space(st, bank, protect, idx)
        pos = len(st.out)
        for bank, var in produced:
            future = list(res_of_write.get((idx, bank, var), ()))
            st.occupants[bank][var] = _Resident(
                var=var, valid_from=pos + latency, next_reads=future
            )
        st.out.append(instr)

    if st.pending_reloads:
        raise SpillError("reloads scheduled past the end of the program")
    return SpillResult(
        instructions=st.out,
        spills=st.spills,
        reloads=st.reloads,
        spill_stores=st.spill_stores,
        spill_loads=st.spill_loads,
        nops_inserted=st.nops,
        num_rows=st.row_counter,
    )


def _spill_candidates(
    st: _SpillState, bank: int, protect: set[int], pos: int
) -> list[_Resident]:
    return [
        r
        for var, r in st.occupants[bank].items()
        if var not in protect and r.valid_from <= pos and r.next_reads
    ]


def _make_space(st: _SpillState, bank: int, protect: set[int],
                current_idx: int) -> None:
    while len(st.occupants[bank]) >= st.capacity:
        _evict_row(st, bank, protect, current_idx)


def _evict_row(st: _SpillState, trigger_bank: int, protect: set[int],
               current_idx: int) -> None:
    """Spill the trigger bank's worst resident, batching the store with
    the farthest residents of other nearly-full banks (one row)."""
    attempts = 0
    while True:
        pos = len(st.out)
        primary = _spill_candidates(st, trigger_bank, protect, pos)
        if primary:
            break
        attempts += 1
        if attempts > st.config.pipeline_stages + 2:
            raise SpillError(
                f"bank {trigger_bank}: no spillable resident "
                f"(R={st.capacity} too small for this pipeline)"
            )
        st.out.append(NopInstr())  # age in-flight values
        st.nops += 1

    pos = len(st.out)
    victims: list[tuple[int, _Resident]] = [
        (trigger_bank, max(primary, key=lambda r: r.next_reads[0]))
    ]
    near_full = st.capacity - 2
    for bank in range(st.config.banks):
        if bank == trigger_bank:
            continue
        if len(st.occupants[bank]) <= near_full:
            continue
        cands = _spill_candidates(st, bank, protect, pos)
        if cands:
            victims.append((bank, max(cands, key=lambda r: r.next_reads[0])))

    row = st.row_counter
    st.row_counter += 1
    slots: list[StoreSlot] = []
    lanes: dict[int, int] = {}
    for bank, victim in victims:
        var = victim.var
        # Freeing a register requires an architectural event (a read
        # with free_source), so every eviction stores — even if the
        # value already sits in memory from an earlier spill.
        slots.append(StoreSlot(bank=bank, var=var, free_source=True))
        lanes[bank] = var
        st.lane_row[(bank, var)] = row
        st.spilled.add((bank, var))
        st.spills += 1
        del st.occupants[bank][var]
        st.pending_reloads.setdefault(victim.next_reads[0], []).append(
            (bank, var)
        )
    st.row_content[row] = lanes
    st.out.append(
        StoreInstr(
            row=row,
            slots=tuple(sorted(slots, key=lambda s: s.bank)),
        )
    )
    st.spill_stores += 1


def _emit_reload(st: _SpillState, bank: int, var: int, current_idx: int,
                 protect: set[int]) -> None:
    """Masked row reload: the needed var plus row-mates with headroom."""
    row = st.lane_row[(bank, var)]
    dests: list[tuple[int, int]] = []
    _make_space(st, bank, protect | {var}, current_idx)
    dests.append((bank, var))
    for mate_bank, mate_var in st.row_content.get(row, {}).items():
        if (mate_bank == bank and mate_var == var):
            continue
        if (mate_bank, mate_var) not in st.spilled:
            continue
        if st.lane_row.get((mate_bank, mate_var)) != row:
            continue  # residence superseded by a later spill row
        if len(st.occupants[mate_bank]) >= st.capacity - 1:
            continue  # no headroom: bringing it back would thrash
        if not st.has_reads_after(mate_bank, mate_var, current_idx):
            continue
        dests.append((mate_bank, mate_var))

    pos = len(st.out)
    for d_bank, d_var in dests:
        st.spilled.discard((d_bank, d_var))
        st.occupants[d_bank][d_var] = _Resident(
            var=d_var,
            valid_from=pos + 1,
            next_reads=st.reads_after(d_bank, d_var, current_idx),
        )
        st.reloads += 1
    st.out.append(
        LoadInstr(row=row, dests=tuple(sorted(dests)))
    )
    st.spill_loads += 1
