#!/usr/bin/env python3
"""Batched inference through the two-phase execution engine.

The paper's serving scenario: one static program (the compiled DAG),
a stream of input vectors (new evidence per tick for a probabilistic
circuit, new right-hand sides for a triangular solve).  Instead of
interpreting the program per input, we lower it once to a verified
ExecutionPlan and sweep whole batches through the vectorized
executor.

Run:  python examples/batched_inference.py
"""

import time

import numpy as np

from repro import MIN_EDP_CONFIG, compile_dag, run_program
from repro.sim import BatchSimulator, batch_perf_report, energy_of_batch
from repro.workloads import build_workload

BATCH = 256


def main() -> None:
    dag = build_workload("tretail", scale=0.05)
    result = compile_dag(dag, MIN_EDP_CONFIG, validate_input=False)
    print(f"workload: {dag.name} ({dag.num_nodes} nodes) -> "
          f"{len(result.program.instructions)} instructions")

    # Phase 1 — lower once.  Hazards, interconnect legality and the
    # compiler's address predictions are all verified here, not per run.
    plan = result.plan()
    print(f"plan: {len(plan.steps)} steps, {plan.cycles_per_row} "
          f"cycles/row, {plan.state_size} state cells")

    # Phase 2 — sweep a whole batch at once.
    rng = np.random.default_rng(0)
    matrix = rng.uniform(0.9, 1.1, size=(BATCH, dag.num_inputs))
    engine = BatchSimulator(plan)
    batch = engine.run(matrix)
    print(f"batch {batch.batch}: {batch.host_seconds * 1e3:.1f}ms "
          f"({batch.host_rows_per_second:,.0f} rows/s simulated)")

    # Compare against the scalar reference on a few rows — outputs are
    # bitwise identical, the scalar path just re-verifies everything.
    t0 = time.perf_counter()
    for row in range(4):
        scalar = run_program(result.program, list(matrix[row]))
        for var, column in batch.outputs.items():
            assert column[row] == scalar.outputs[var]
    scalar_row_s = (time.perf_counter() - t0) / 4
    print(f"scalar reference: {scalar_row_s * 1e3:.1f}ms/row -> "
          f"batched speedup ~{scalar_row_s * BATCH / batch.host_seconds:,.0f}x")

    # Engine selection: the fused engine lowers the plan once more
    # into level-grouped super-op kernels (~2 numpy dispatches per
    # dependence level instead of one per tape step) and "codegen"
    # exec-compiles a plan-specialized sweep on top.  Same bits out,
    # several times the rows/s — the CLI flag is `--engine fused`:
    #
    #   python -m repro run tretail --batch 256 --engine fused
    #
    fused = BatchSimulator(plan, engine="fused")
    fused_batch = fused.run(matrix)
    for var, column in batch.outputs.items():
        assert np.array_equal(
            column.view(np.uint64),
            fused_batch.outputs[var].view(np.uint64),
        )  # bitwise identical, not merely close
    print(f"fused engine: {fused_batch.host_seconds * 1e3:.1f}ms "
          f"({fused_batch.host_rows_per_second:,.0f} rows/s, "
          f"{batch.host_seconds / fused_batch.host_seconds:.1f}x the "
          "step interpreter)")

    # Device-model metrics scale exactly with B (execution is static).
    ops = result.stats.num_operations
    perf = batch_perf_report(
        dag.name, plan.config, ops, plan.cycles_per_row, BATCH,
        host_seconds=batch.host_seconds,
    )
    energy = energy_of_batch(plan.config, plan.counters, ops, BATCH)
    print(f"device: {perf.throughput_gops:.2f} GOPS, "
          f"{perf.rows_per_second:,.0f} rows/s, "
          f"{energy.energy_per_op_pj:.1f} pJ/op")


if __name__ == "__main__":
    main()
