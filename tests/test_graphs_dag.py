"""Unit tests for the DAG container and builder."""

import pytest

from repro.errors import GraphError
from repro.graphs import DAG, DAGBuilder, OpType


class TestDAGBuilder:
    def test_empty_builder_builds_empty_dag(self):
        dag = DAGBuilder().build()
        assert dag.num_nodes == 0
        assert dag.num_inputs == 0
        assert dag.num_edges == 0

    def test_add_input_returns_sequential_ids(self):
        b = DAGBuilder()
        assert b.add_input() == 0
        assert b.add_input() == 1

    def test_add_op_records_predecessors_in_order(self):
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        s = b.add_op(OpType.ADD, [y, x])
        dag = b.build()
        assert dag.predecessors(s) == (y, x)

    def test_add_op_rejects_forward_reference(self):
        b = DAGBuilder()
        b.add_input()
        with pytest.raises(GraphError):
            b.add_op(OpType.ADD, [0, 5])

    def test_add_op_rejects_empty_predecessors(self):
        b = DAGBuilder()
        with pytest.raises(GraphError):
            b.add_op(OpType.MUL, [])

    def test_add_op_rejects_input_type(self):
        b = DAGBuilder()
        b.add_input()
        with pytest.raises(GraphError):
            b.add_op(OpType.INPUT, [0])

    def test_shorthand_helpers(self):
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        s = b.add_add([x, y])
        p = b.add_mul([x, s])
        dag = b.build()
        assert dag.op(s) is OpType.ADD
        assert dag.op(p) is OpType.MUL


class TestDAGAccessors:
    @pytest.fixture
    def diamond(self) -> DAG:
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        s = b.add_add([x, y])
        p = b.add_mul([x, s])
        q = b.add_mul([s, y])
        b.add_add([p, q])
        return b.build("diamond")

    def test_counts(self, diamond):
        assert diamond.num_nodes == 6
        assert diamond.num_inputs == 2
        assert diamond.num_operations == 4
        assert diamond.num_edges == 8

    def test_successors_track_consumers(self, diamond):
        assert set(diamond.successors(2)) == {3, 4}
        assert diamond.out_degree(0) == 2

    def test_sinks_and_sources(self, diamond):
        assert diamond.sinks() == [5]
        assert diamond.sources() == [0, 1]

    def test_leaves_iterates_inputs(self, diamond):
        assert list(diamond.leaves()) == [0, 1]

    def test_is_binary(self, diamond):
        assert diamond.is_binary()

    def test_max_fan_in_out(self, diamond):
        assert diamond.max_fan_in() == 2
        assert diamond.max_fan_out() == 2

    def test_input_slots_default_numbering(self, diamond):
        assert diamond.input_slot(0) == 0
        assert diamond.input_slot(1) == 1
        assert diamond.input_slot(2) == -1

    def test_node_record(self, diamond):
        rec = diamond.node(2)
        assert rec.op is OpType.ADD
        assert rec.predecessors == (0, 1)
        assert not rec.is_leaf
        assert rec.fan_in == 2

    def test_len(self, diamond):
        assert len(diamond) == 6


class TestDAGValidationOnConstruction:
    def test_input_with_predecessors_rejected(self):
        with pytest.raises(GraphError):
            DAG([OpType.INPUT, OpType.INPUT], [[], [0]])

    def test_arithmetic_without_predecessors_rejected(self):
        with pytest.raises(GraphError):
            DAG([OpType.ADD], [[]])

    def test_unknown_predecessor_rejected(self):
        with pytest.raises(GraphError):
            DAG([OpType.INPUT, OpType.ADD], [[], [7]])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphError):
            DAG([OpType.INPUT], [[], []])

    def test_custom_input_slots(self):
        dag = DAG(
            [OpType.INPUT, OpType.INPUT, OpType.ADD],
            [[], [], [0, 1]],
            input_slots=[1, 0],
        )
        assert dag.input_slot(0) == 1
        assert dag.input_slot(1) == 0

    def test_bad_input_slots_rejected(self):
        with pytest.raises(GraphError):
            DAG(
                [OpType.INPUT, OpType.INPUT, OpType.ADD],
                [[], [], [0, 1]],
                input_slots=[0, 2],
            )


class TestOpType:
    def test_identity_elements(self):
        assert OpType.ADD.identity() == 0.0
        assert OpType.MUL.identity() == 1.0
        with pytest.raises(ValueError):
            OpType.INPUT.identity()

    def test_apply(self):
        assert OpType.ADD.apply(2.0, 3.0) == 5.0
        assert OpType.MUL.apply(2.0, 3.0) == 6.0
        with pytest.raises(ValueError):
            OpType.INPUT.apply(1.0, 2.0)

    def test_symbols(self):
        assert OpType.ADD.symbol == "+"
        assert OpType.MUL.symbol == "*"
        assert OpType.INPUT.symbol == "i"
