"""Tests for binary artifact images (plans + programs)."""

import mmap
import pickle

import numpy as np
import pytest

from repro.arch import ArchConfig, encode_program
from repro.compiler import compile_dag
from repro.errors import ImageError
from repro.runner.imageio import (
    IMAGE_VERSION,
    Image,
    dump_plan,
    dump_program,
    load_plan,
    load_program,
    open_image,
    read_plan_image,
    read_program_image,
    write_plan_image,
    write_program_image,
)
from repro.sim import BatchSimulator, run_program
from repro.testing import make_random_dag

CONFIG = ArchConfig(depth=2, banks=8, regs_per_bank=16)


@pytest.fixture(scope="module")
def compiled():
    dag = make_random_dag(seed=21, num_ops=50)
    result = compile_dag(dag, CONFIG)
    return dag, result


@pytest.fixture(scope="module")
def plan(compiled):
    _, result = compiled
    return result.plan()


class TestPlanImages:
    def test_round_trip_executes_bitwise(self, plan):
        plan2 = load_plan(dump_plan(plan))
        rng = np.random.default_rng(3)
        matrix = rng.uniform(0.9, 1.1, size=(4, plan.input_cells.size))
        direct = BatchSimulator(plan).run(matrix)
        loaded = BatchSimulator(plan2).run(matrix)
        assert sorted(direct.outputs) == sorted(loaded.outputs)
        for var in direct.outputs:
            assert np.array_equal(direct.outputs[var], loaded.outputs[var])
        assert direct.counters == loaded.counters
        assert plan2.cycles_per_row == plan.cycles_per_row

    def test_image_smaller_than_pickle(self, plan):
        img = dump_plan(plan)
        pkl = pickle.dumps(plan, protocol=5)
        assert len(img) < len(pkl)

    def test_file_round_trip(self, plan, tmp_path):
        path = tmp_path / "plan.img"
        write_plan_image(path, plan)
        plan2 = read_plan_image(path)
        assert plan2.state_size == plan.state_size
        assert len(plan2.steps) == len(plan.steps)

    def test_mmap_arrays_are_zero_copy(self, plan, tmp_path):
        path = tmp_path / "plan.img"
        write_plan_image(path, plan)
        plan2 = read_plan_image(path, use_mmap=True)
        base = plan2.input_cells
        while base.base is not None and isinstance(base.base, np.ndarray):
            base = base.base
        assert isinstance(base.base, (mmap.mmap, memoryview))
        assert np.array_equal(plan2.input_cells, plan.input_cells)

    def test_dump_is_deterministic(self, plan):
        assert dump_plan(plan) == dump_plan(plan)


class TestProgramImages:
    def test_bitstream_stability(self, compiled):
        _, result = compiled
        addrs = result.allocation.read_addrs
        buf = dump_program(result.program, addrs)
        prog2, addrs2 = load_program(buf)
        assert addrs2 == addrs
        original = encode_program(result.program, addrs)
        reencoded = encode_program(prog2, addrs2)
        assert reencoded.data == original.data
        assert reencoded.total_bits == original.total_bits
        assert reencoded.lengths == original.lengths

    def test_round_trip_executes_bitwise(self, compiled):
        dag, result = compiled
        addrs = result.allocation.read_addrs
        prog2, addrs2 = load_program(dump_program(result.program, addrs))
        rng = np.random.default_rng(9)
        inputs = list(rng.uniform(0.9, 1.1, size=dag.num_inputs))
        direct = run_program(result.program, inputs, check_addresses=addrs)
        loaded = run_program(prog2, inputs, check_addresses=addrs2)
        assert sorted(direct.outputs) == sorted(loaded.outputs)
        for var in direct.outputs:
            bits = np.float64(direct.outputs[var]).tobytes()
            assert np.float64(loaded.outputs[var]).tobytes() == bits
        assert direct.counters == loaded.counters

    def test_file_round_trip(self, compiled, tmp_path):
        _, result = compiled
        addrs = result.allocation.read_addrs
        path = tmp_path / "prog.img"
        write_program_image(path, result.program, addrs)
        prog2, addrs2 = read_program_image(path)
        assert len(prog2.instructions) == len(result.program.instructions)
        assert addrs2 == addrs


class TestCorruptionDetection:
    def test_flipped_payload_byte_rejected(self, plan):
        buf = bytearray(dump_plan(plan))
        buf[-1] ^= 0xFF
        with pytest.raises(ImageError):
            Image(bytes(buf))

    def test_flipped_table_byte_rejected(self, plan):
        buf = bytearray(dump_plan(plan))
        buf[40] ^= 0xFF  # inside the section table
        with pytest.raises(ImageError):
            Image(bytes(buf))

    def test_truncation_rejected(self, plan):
        buf = dump_plan(plan)
        with pytest.raises(ImageError):
            Image(buf[: len(buf) // 2])
        with pytest.raises(ImageError):
            Image(buf[:10])
        with pytest.raises(ImageError):
            Image(b"")

    def test_bad_magic_rejected(self, plan):
        buf = bytearray(dump_plan(plan))
        buf[:4] = b"NOPE"
        with pytest.raises(ImageError):
            Image(bytes(buf))

    def test_future_version_rejected(self, plan):
        buf = bytearray(dump_plan(plan))
        import struct

        struct.pack_into("<H", buf, 4, IMAGE_VERSION + 1)
        with pytest.raises(ImageError):
            Image(bytes(buf))

    def test_kind_mismatch_rejected(self, compiled, plan):
        _, result = compiled
        prog_buf = dump_program(
            result.program, result.allocation.read_addrs
        )
        with pytest.raises(ImageError):
            load_plan(prog_buf)
        with pytest.raises(ImageError):
            load_program(dump_plan(plan))

    def test_missing_file_wrapped(self, tmp_path):
        with pytest.raises(ImageError):
            open_image(tmp_path / "nope.img")

    def test_empty_file_wrapped(self, tmp_path):
        path = tmp_path / "empty.img"
        path.write_bytes(b"")
        with pytest.raises(ImageError):
            open_image(path)  # mmap of an empty file raises ValueError
