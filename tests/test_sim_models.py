"""Unit tests for the performance, energy, and area models."""

import pytest

from repro.arch import (
    ArchConfig,
    Interconnect,
    MIN_EDP_CONFIG,
    MIN_ENERGY_CONFIG,
    MIN_LATENCY_CONFIG,
)
from repro.sim import (
    area_of,
    count_activity,
    energy_of_run,
    paper_area_breakdown_mm2,
    paper_power_breakdown_mw,
    perf_report,
)
from repro.compiler import compile_dag
from repro.testing import make_random_dag


@pytest.fixture(scope="module")
def measured():
    dag = make_random_dag(91, num_ops=200)
    result = compile_dag(dag, MIN_EDP_CONFIG)
    counters = count_activity(result.program)
    return result, counters


class TestPerf:
    def test_throughput_formula(self):
        report = perf_report("w", MIN_EDP_CONFIG, operations=3000, cycles=1000)
        # 3 ops/cycle at 300MHz = 0.9 GOPS.
        assert report.throughput_gops == pytest.approx(0.9)
        assert report.ops_per_cycle == pytest.approx(3.0)

    def test_latency_per_op(self):
        report = perf_report("w", MIN_EDP_CONFIG, operations=300, cycles=300)
        # 1 cycle/op at 300MHz = 3.33 ns/op.
        assert report.latency_per_op_ns == pytest.approx(10 / 3)

    def test_zero_guards(self):
        report = perf_report("w", MIN_EDP_CONFIG, operations=0, cycles=0)
        assert report.throughput_gops == 0.0
        assert report.latency_per_op_ns == 0.0


class TestEnergyModel:
    def test_breakdown_totals(self, measured):
        result, counters = measured
        report = energy_of_run(
            MIN_EDP_CONFIG, counters, result.stats.num_operations
        )
        assert report.total_pj == pytest.approx(
            sum(report.breakdown.as_dict().values())
        )
        assert report.energy_per_op_pj > 0
        assert report.edp_per_op == pytest.approx(
            report.energy_per_op_pj * report.latency_per_op_ns
        )

    def test_power_in_plausible_range(self, measured):
        # The anchor design dissipates ~109mW in the paper; our measured
        # activity differs, but the model should stay the same order.
        result, counters = measured
        report = energy_of_run(
            MIN_EDP_CONFIG, counters, result.stats.num_operations
        )
        assert 0.01 < report.power_w < 1.0

    def test_paper_breakdown_sums_to_paper_total(self):
        total = sum(paper_power_breakdown_mw().values())
        assert total == pytest.approx(108.9, abs=0.5)

    def test_more_banks_cost_more_energy_at_equal_activity(self, measured):
        result, counters = measured
        small = ArchConfig(depth=3, banks=16, regs_per_bank=32)
        e_small = energy_of_run(small, counters, result.stats.num_operations)
        e_big = energy_of_run(
            MIN_EDP_CONFIG, counters, result.stats.num_operations
        )
        assert e_big.total_pj > e_small.total_pj

    def test_more_regs_cost_more_energy_at_equal_activity(self, measured):
        result, counters = measured
        big_r = ArchConfig(depth=3, banks=64, regs_per_bank=128)
        e_base = energy_of_run(
            MIN_EDP_CONFIG, counters, result.stats.num_operations
        )
        e_big = energy_of_run(big_r, counters, result.stats.num_operations)
        assert e_big.total_pj > e_base.total_pj


class TestAreaModel:
    def test_anchor_matches_table2_total(self):
        area = area_of(MIN_EDP_CONFIG)
        assert area.total_mm2 == pytest.approx(3.21, abs=0.05)

    def test_paper_rows_exposed(self):
        rows = paper_area_breakdown_mm2()
        assert rows["Instruction memory"] == pytest.approx(1.2)
        assert sum(rows.values()) == pytest.approx(3.21, abs=0.05)

    def test_area_monotone_in_banks(self):
        a8 = area_of(ArchConfig(depth=3, banks=8, regs_per_bank=32))
        a64 = area_of(MIN_EDP_CONFIG)
        assert a64.total_mm2 > a8.total_mm2

    def test_area_monotone_in_regs(self):
        base = area_of(MIN_EDP_CONFIG)
        big = area_of(MIN_LATENCY_CONFIG)  # R=128
        assert big.banks > base.banks

    def test_memories_dominate_area(self):
        # Table II: the two memories are ~75% of the design.
        area = area_of(MIN_EDP_CONFIG)
        assert (area.instr_memory + area.data_memory) / area.total_mm2 > 0.6

    def test_corner_configs_distinct(self):
        areas = {
            str(cfg): area_of(cfg).total_mm2
            for cfg in (
                MIN_EDP_CONFIG,
                MIN_ENERGY_CONFIG,
                MIN_LATENCY_CONFIG,
            )
        }
        assert len(set(areas.values())) == 3
