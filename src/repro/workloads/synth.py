"""Parametric synthetic scenario generators for differential testing.

The Table-I suite (:mod:`repro.workloads.suite`) covers the paper's
published workloads; this module covers everything *else* the compiler
and the three executors must survive: adversarial DAG shapes spanning
the structural extremes of irregular computation.  Every generator is

* **seeded** — generation uses one ``random.Random(seed)`` stream and
  never iterates an unordered container, so a ``(family, params,
  seed)`` triple produces the identical DAG in any process;
* **fingerprint-stable** — the resulting DAG's
  :func:`repro.runner.fingerprint.dag_fingerprint` is a pure function
  of the triple (asserted across processes in the test suite);
* **structurally valid** — every arithmetic node has fan-in >= 2 and
  every node reaches an arithmetic sink, so
  :func:`repro.graphs.validate` passes and the full
  compile -> lower -> execute pipeline applies, down to the smallest
  degenerate size (``n = 3``: two inputs, one op).

Families (``SYNTH_FAMILIES``):

``layered``
    Dense rectangular layers; each node samples 2-4 predecessors from
    the previous layer.  The "regular" baseline shape.
``wide``
    One balanced reduction tree over many leaves — maximal
    parallelism, minimal depth.
``deep``
    An accumulation spine of alternating add/mul with one fresh leaf
    per step — maximal depth, worst case for pipelining.
``diamond``
    Stacked split -> parallel-paths -> merge diamonds, the classic
    reconvergent shape that stresses liveness ranges.
``skewed_fanout``
    A few hub values consumed by nearly every other node — extreme
    fan-out, worst case for bank conflicts and copy insertion.
``near_chain``
    A chain where each node also occasionally reads a uniformly
    random ancestor — long-range irregular edges on a serial spine.
``disconnected``
    Several independent components compiled as one program — multiple
    sinks, no shared values across components.
``reuse``
    A tiny leaf set reused by every operation — extreme sharing,
    stresses register lifetimes and the valid_rst discipline.

Use :func:`generate_synth` to dispatch by family name, or
:class:`SynthParams` + :meth:`SynthParams.build` for a declarative,
picklable scenario description (what the fuzzer ships to workers and
writes into repro-case artifacts).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..graphs import DAG, DAGBuilder, OpType

#: Smallest DAG any family will emit: two inputs and one operation.
MIN_NODES = 3


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WorkloadError(message)


def _validate_common(n: int, seed: int) -> None:
    _require(isinstance(n, int) and n >= MIN_NODES,
             f"n must be an int >= {MIN_NODES}, got {n!r}")
    _require(isinstance(seed, int), f"seed must be an int, got {seed!r}")


def _op(rng: random.Random) -> OpType:
    return OpType.ADD if rng.random() < 0.5 else OpType.MUL


def _reduce_all(builder: DAGBuilder, nodes: list[int],
                rng: random.Random, fan_in: int = 4) -> int:
    """Fold ``nodes`` into a single value with a bounded-fan-in tree."""
    work = list(nodes)
    while len(work) > 1:
        work = [
            work[i] if len(work[i:i + fan_in]) == 1
            else builder.add_op(_op(rng), work[i:i + fan_in])
            for i in range(0, len(work), fan_in)
        ]
    return work[0]


def _close_loose_ends(builder: DAGBuilder, consumed: set[int],
                      rng: random.Random, name: str) -> DAG:
    """Reduce every unconsumed value into one root; no dead nodes."""
    loose = [v for v in range(builder.num_nodes) if v not in consumed]
    if len(loose) > 1:
        _reduce_all(builder, loose, rng)
    return builder.build(name)


# ---------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------
def layered(n: int, seed: int = 0, width: int = 0,
            fill_prob: float = 0.5) -> DAG:
    """Rectangular layers, 2-4 predecessors each from the layer below.

    Args:
        n: Target total node count (>= 3).
        width: Nodes per layer; 0 derives ~sqrt(n).
        fill_prob: Probability of drawing a third/fourth predecessor.
    """
    _validate_common(n, seed)
    _require(isinstance(width, int) and width >= 0,
             f"width must be an int >= 0, got {width!r}")
    _require(0.0 <= fill_prob <= 1.0,
             f"fill_prob must be in [0, 1], got {fill_prob!r}")
    rng = random.Random(seed)
    width = width or max(2, int(round(n ** 0.5)))
    builder = DAGBuilder()
    prev = [builder.add_input() for _ in range(min(width, max(n - 1, 2)))]
    consumed: set[int] = set()
    ops_budget = max(n - len(prev), 1)
    while ops_budget > 0:
        size = min(width, ops_budget)
        layer: list[int] = []
        for i in range(size):
            picks = {prev[i % len(prev)], prev[rng.randrange(len(prev))]}
            cap = min(4, len(prev))  # fill_prob=1 with a narrow layer
            attempts = 0
            while (len(picks) < cap and attempts < 16
                   and rng.random() < fill_prob):
                picks.add(prev[rng.randrange(len(prev))])
                attempts += 1
            if len(picks) < 2:  # one-node previous layer
                picks.add(builder.add_input())
            children = sorted(picks)
            layer.append(builder.add_op(_op(rng), children))
            consumed.update(children)
        ops_budget -= size
        prev = layer
    return _close_loose_ends(
        builder, consumed, rng, f"layered-n{n}-s{seed}"
    )


def wide(n: int, seed: int = 0, fan_in: int = 2) -> DAG:
    """One balanced reduction over many leaves (maximal parallelism)."""
    _validate_common(n, seed)
    _require(isinstance(fan_in, int) and fan_in >= 2,
             f"fan_in must be an int >= 2, got {fan_in!r}")
    rng = random.Random(seed)
    builder = DAGBuilder()
    # A k-ary reduction over L leaves costs ~L/(k-1) internal nodes.
    leaves = max(2, (n * (fan_in - 1)) // fan_in)
    nodes = [builder.add_input() for _ in range(leaves)]
    _reduce_all(builder, nodes, rng, fan_in=fan_in)
    return builder.build(f"wide-n{n}-s{seed}")


def deep(n: int, seed: int = 0) -> DAG:
    """Serial accumulation spine: node_i = op(node_{i-1}, fresh leaf)."""
    _validate_common(n, seed)
    rng = random.Random(seed)
    builder = DAGBuilder()
    spine = builder.add_add([builder.add_input(), builder.add_input()])
    while builder.num_nodes + 2 <= n:
        leaf = builder.add_input()
        spine = builder.add_op(_op(rng), [spine, leaf])
    return builder.build(f"deep-n{n}-s{seed}")


def diamond(n: int, seed: int = 0, paths: int = 3) -> DAG:
    """Stacked reconvergent diamonds: split -> ``paths`` lanes -> merge."""
    _validate_common(n, seed)
    _require(isinstance(paths, int) and paths >= 2,
             f"paths must be an int >= 2, got {paths!r}")
    rng = random.Random(seed)
    builder = DAGBuilder()
    top = builder.add_add([builder.add_input(), builder.add_input()])
    while builder.num_nodes + paths + 2 <= n:
        salt = builder.add_input()  # keeps lanes distinct values
        lanes = [
            builder.add_op(_op(rng), [top, salt]) for _ in range(paths)
        ]
        top = builder.add_op(_op(rng), lanes)
    return builder.build(f"diamond-n{n}-s{seed}")


def skewed_fanout(n: int, seed: int = 0, hubs: int = 0) -> DAG:
    """A few hub values feeding nearly every node (extreme fan-out).

    Args:
        hubs: Number of hub values; 0 derives one hub per ~16 nodes
            (at least one, at most ``n // 3``).
    """
    _validate_common(n, seed)
    _require(isinstance(hubs, int) and 0 <= hubs <= n // 3,
             f"hubs must be an int in [0, n//3]={n // 3}, got {hubs!r}")
    hubs = hubs or max(1, min(n // 16, n // 3))
    rng = random.Random(seed)
    builder = DAGBuilder()
    consumed: set[int] = set()
    hub_nodes: list[int] = []
    for _ in range(hubs):
        children = [builder.add_input(), builder.add_input()]
        hub_nodes.append(builder.add_op(_op(rng), children))
        consumed.update(children)
    others: list[int] = []
    while builder.num_nodes + 1 < n:
        hub = hub_nodes[rng.randrange(hubs)]
        if others and rng.random() < 0.5:
            other = others[rng.randrange(len(others))]
        else:
            other = hub_nodes[rng.randrange(hubs)]
        if other == hub:
            other = builder.add_input()
        children = sorted({hub, other})
        others.append(builder.add_op(_op(rng), children))
        consumed.update(children)
    return _close_loose_ends(builder, consumed, rng, f"skew-n{n}-s{seed}")


def near_chain(n: int, seed: int = 0, skip_prob: float = 0.15) -> DAG:
    """A chain with occasional long-range back edges."""
    _validate_common(n, seed)
    _require(0.0 <= skip_prob <= 1.0,
             f"skip_prob must be in [0, 1], got {skip_prob!r}")
    rng = random.Random(seed)
    builder = DAGBuilder()
    history = [builder.add_add([builder.add_input(), builder.add_input()])]
    while builder.num_nodes + 2 <= n:
        if len(history) > 2 and rng.random() < skip_prob:
            # randrange excludes the last index, so far != history[-1].
            far = history[rng.randrange(len(history) - 1)]
            node = builder.add_op(_op(rng), sorted((history[-1], far)))
        else:
            node = builder.add_op(
                _op(rng), [history[-1], builder.add_input()]
            )
        history.append(node)
    return builder.build(f"chain-n{n}-s{seed}")


def disconnected(n: int, seed: int = 0, components: int = 0) -> DAG:
    """``components`` independent sub-DAGs in one program (many sinks).

    Args:
        components: Component count; 0 derives one per ~12 nodes
            (at least one, at most ``n // MIN_NODES``).
    """
    _validate_common(n, seed)
    _require(isinstance(components, int) and components >= 0,
             f"components must be an int >= 0, got {components!r}")
    _require(components <= n // MIN_NODES,
             f"n={n} too small for {components} components "
             f"(each needs >= {MIN_NODES} nodes)")
    components = components or max(1, min(n // 12, n // MIN_NODES))
    rng = random.Random(seed)
    builder = DAGBuilder()
    per = n // components
    for c in range(components):
        budget = per if c < components - 1 else n - per * (components - 1)
        spine = builder.add_op(
            _op(rng), [builder.add_input(), builder.add_input()]
        )
        budget -= 3
        while budget >= 2:
            spine = builder.add_op(
                _op(rng), [spine, builder.add_input()]
            )
            budget -= 2
    return builder.build(f"disc-n{n}-c{components}-s{seed}")


def reuse(n: int, seed: int = 0, pool_size: int = 4) -> DAG:
    """Every op re-reads one tiny set of values (extreme sharing)."""
    _validate_common(n, seed)
    _require(isinstance(pool_size, int) and pool_size >= 2,
             f"pool_size must be an int >= 2, got {pool_size!r}")
    rng = random.Random(seed)
    builder = DAGBuilder()
    pool = [builder.add_input() for _ in range(min(pool_size, n - 1))]
    consumed: set[int] = set()
    while builder.num_nodes + 1 < n:
        a = pool[rng.randrange(len(pool))]
        b = pool[rng.randrange(len(pool))]
        if a == b:
            b = pool[(pool.index(a) + 1) % len(pool)]
        children = sorted({a, b})
        builder.add_op(_op(rng), children)
        consumed.update(children)
    return _close_loose_ends(builder, consumed, rng, f"reuse-n{n}-s{seed}")


#: Family name -> generator callable.  The dispatch surface for the
#: fuzzer, the suite registry and the CLI.
SYNTH_FAMILIES: dict[str, Callable[..., DAG]] = {
    "layered": layered,
    "wide": wide,
    "deep": deep,
    "diamond": diamond,
    "skewed_fanout": skewed_fanout,
    "near_chain": near_chain,
    "disconnected": disconnected,
    "reuse": reuse,
}


def generate_synth(family: str, n: int, seed: int = 0, **kwargs) -> DAG:
    """Generate one synthetic scenario DAG.

    Args:
        family: A :data:`SYNTH_FAMILIES` key.
        n: Target node count (the result lands within a few nodes).
        seed: Generation seed; the triple ``(family, params, seed)``
            fully determines the DAG (and its fingerprint).
        **kwargs: Family-specific knobs (see each generator).

    Raises:
        WorkloadError: Unknown family or out-of-range parameters —
            validated up front, before any generation work.
    """
    if family not in SYNTH_FAMILIES:
        raise WorkloadError(
            f"unknown synth family {family!r}; choose from "
            f"{sorted(SYNTH_FAMILIES)}"
        )
    return SYNTH_FAMILIES[family](n, seed=seed, **kwargs)


@dataclass(frozen=True)
class SynthParams:
    """Declarative, picklable scenario description.

    This is the replayable identity of a generated DAG: the fuzzer
    ships these to worker processes and writes them into repro-case
    artifacts, and :meth:`build` regenerates the identical graph
    anywhere.
    """

    family: str
    n: int
    seed: int = 0
    kwargs: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def build(self) -> DAG:
        return generate_synth(
            self.family, self.n, seed=self.seed, **dict(self.kwargs)
        )

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "kwargs": dict(self.kwargs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SynthParams":
        return cls(
            family=data["family"],
            n=int(data["n"]),
            seed=int(data["seed"]),
            kwargs=tuple(sorted(data.get("kwargs", {}).items())),
        )
