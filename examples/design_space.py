#!/usr/bin/env python3
"""Mini design-space exploration (§V of the paper).

Sweeps a reduced (D, B, R) grid over two workloads, prints the
latency/energy/EDP surface and the optimum corners, and shows the
interconnect trade-off of fig. 6.

Run:  python examples/design_space.py
"""

from repro import ArchConfig, Topology
from repro.analysis import format_table
from repro.dse import pareto_front, run_sweep, summarize
from repro.experiments.common import measure
from repro.workloads import build_workload


def main() -> None:
    workloads = {
        "tretail": build_workload("tretail", scale=0.05),
        "bp_200": build_workload("bp_200", scale=0.05),
    }
    configs = [
        ArchConfig(depth=d, banks=b, regs_per_bank=r)
        for d in (1, 2, 3)
        for b in (8, 16, 32)
        if b >= (1 << d)
        for r in (16, 64)
    ]
    print(f"sweeping {len(configs)} configurations "
          f"over {sorted(workloads)} ...")
    result = run_sweep(workloads, configs=configs)

    rows = [
        (
            p.label,
            round(p.latency_per_op_ns, 3),
            round(p.energy_per_op_pj, 1),
            round(p.edp_per_op, 1),
        )
        for p in sorted(result.points, key=lambda p: p.edp_per_op)
    ]
    print(format_table(["config", "ns/op", "pJ/op", "EDP"], rows))

    summary = summarize(result)
    print(f"\nmin latency: {summary.min_latency.label}")
    print(f"min energy:  {summary.min_energy.label}")
    print(f"min EDP:     {summary.min_edp.label}")
    front = pareto_front(result)
    print(f"Pareto front: {' -> '.join(p.label for p in front)}")

    # Interconnect study (fig. 6): same DAG, different output wiring.
    print("\ninterconnect trade-off on tretail (fig. 6):")
    dag = workloads["tretail"]
    cfg = ArchConfig(depth=3, banks=16, regs_per_bank=64)
    for topology in (
        Topology.CROSSBAR_BOTH,
        Topology.OUTPUT_PER_LAYER,
        Topology.OUTPUT_SINGLE,
    ):
        m = measure(dag, cfg, topology=topology)
        print(
            f"  {topology.value:18s}: "
            f"{m.compile_result.stats.bank_conflicts:4d} conflicts, "
            f"{m.counters.cycles:5d} cycles"
        )


if __name__ == "__main__":
    main()
