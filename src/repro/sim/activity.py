"""Static activity extraction: counters without value-level simulation.

Execution on DPU-v2 is fully static — the instruction stream determines
every register access, crossbar transfer and memory access regardless
of data values.  This module derives the same
:class:`~repro.sim.functional.ActivityCounters` the architectural
simulator produces, directly from a compiled program, in one cheap
pass.  The DSE sweep (48 configurations x suite) relies on this; the
equivalence with simulator-measured counters is asserted in tests.
"""

from __future__ import annotations

from ..arch import (
    CopyInstr,
    ExecInstr,
    Interconnect,
    LoadInstr,
    NopInstr,
    PEOp,
    Program,
    StoreInstr,
    instruction_widths,
)
from .functional import ActivityCounters


def count_activity(
    program: Program, interconnect: Interconnect | None = None
) -> ActivityCounters:
    """Derive activity counters from the instruction stream alone."""
    config = program.config
    inter = interconnect or Interconnect(config)
    widths = instruction_widths(config, inter)
    counters = ActivityCounters()
    total_bits = 0
    for instr in program.instructions:
        counters.instructions += 1
        total_bits += widths.of(instr.mnemonic)
        if isinstance(instr, NopInstr):
            counters.nops += 1
        elif isinstance(instr, ExecInstr):
            counters.exec_count += 1
            counters.bank_reads += len(instr.bank_reads)
            counters.crossbar_transfers += sum(
                1 for src in instr.port_source if src is not None
            )
            for op in instr.pe_ops:
                if op.is_arithmetic:
                    counters.pe_ops += 1
                elif op in (PEOp.PASS_A, PEOp.PASS_B):
                    counters.pe_passes += 1
            counters.bank_writes += len(instr.writes)
        elif isinstance(instr, CopyInstr):
            counters.bank_reads += len(instr.moves)
            counters.bank_writes += len(instr.moves)
            counters.crossbar_transfers += len(instr.moves)
        elif isinstance(instr, LoadInstr):
            counters.dmem_reads += 1
            counters.bank_writes += len(instr.dests)
        elif isinstance(instr, StoreInstr):
            counters.dmem_writes += 1
            counters.bank_reads += len(instr.slots)
    counters.cycles = len(program.instructions) + config.pipeline_stages
    fetches = -(-total_bits // widths.il)
    counters.instr_bits_fetched = fetches * widths.il
    return counters


def batch_counters(
    program: Program,
    batch: int,
    interconnect: Interconnect | None = None,
) -> ActivityCounters:
    """Activity totals for ``batch`` back-to-back runs of a program.

    Static execution means the batch totals are exactly the single-run
    counters scaled by B — the same numbers the batched engine reports
    on its :class:`~repro.sim.batch.BatchResult`.
    """
    return count_activity(program, interconnect).scaled(batch)
