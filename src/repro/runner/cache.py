"""Content-addressed on-disk artifact cache for compiled programs.

The cache memoizes the two expensive phases of the evaluation across
processes and invocations:

* ``compile_dag`` results (:class:`~repro.compiler.CompileResult`),
  keyed by :func:`repro.runner.fingerprint.compile_key`;
* lowered :class:`~repro.sim.plan.ExecutionPlan` artifacts, keyed per
  interconnect topology on top of the compile key.

Artifacts land under ``<dir>/<k[:2]>/`` via an atomic tmp-file
(fsync'd before the rename, so a power cut cannot promote unwritten
data) + :func:`os.replace`, so concurrent workers racing on the same
key at worst redo the work — they never observe a torn file, even
when a writer is SIGKILLed between its tmp write and the rename (the
orphaned tmp is swept by the next ``prune``/``clear`` once stale).  Lowered
:class:`~repro.sim.plan.ExecutionPlan` payloads are stored as dense
checksummed binary images (``<key>.img``, :mod:`repro.runner.
imageio`) — smaller than the pickles they replace and loadable
through ``mmap`` with zero-copy index arrays, which is how the serve
plan pool reads them; every other payload is pickled to ``<key>.pkl``
with an explicitly pinned protocol (5), so shards on different Python
versions sharing one cache directory always read each other's
entries.  A corrupted or truncated artifact of either kind is treated
as a miss (and unlinked), never an error: the cache must always be
safe to delete, truncate or share.  The directory is designed to be hammered by many processes at
once (the serving layer makes cross-process races routine):
``prune``/``clear`` serialize against each other through an advisory
:mod:`fcntl` lock and tolerate entries vanishing mid-scan, while
readers racing maintenance see at worst a miss.

Because the compile key is invariant under node renumbering, a hit
may come from a structurally identical DAG with permuted node ids.
The payload therefore stores the ``node -> variable`` map keyed by
*structural node digest*, and :func:`cached_compile` re-derives the
requesting DAG's ``node_map`` from its own digests on every hit
(nodes with equal digests compute equal values, so any representative
variable is correct).

The process-wide default cache is configured with
:func:`configure_cache` (or the ``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE`` environment variables, which is also how the
orchestrator's worker processes inherit it); the library default is
*no caching* so that plain API use never touches the filesystem.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
import time
from pathlib import Path

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..arch import DEFAULT_TOPOLOGY, Interconnect, Topology
from ..compiler import CompileResult, compile_dag
from ..graphs import DAG, OpType
from .fingerprint import (
    codegen_key,
    compile_key,
    fused_key,
    node_digests,
    plan_key,
)

#: Default location used by the CLI when ``--cache-dir`` is omitted.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-dpu-v2"

# A writer SIGKILLed between its tmp write and the rename leaks the
# tmp file; maintenance sweeps orphans older than this.  The age guard
# is what makes the sweep safe against a *live* writer's in-flight
# tmp: no put() holds its tmp open anywhere near this long.
_TMP_MAX_AGE_S = 3600.0

# Pinned explicitly — NOT pickle.HIGHEST_PROTOCOL.  The cache
# directory is shared machine-wide by the router's shard processes
# (PR 7); a shard on a newer Python writing HIGHEST_PROTOCOL would
# produce entries an older interpreter sharing the directory cannot
# read.  Protocol 5 is readable by every supported Python (3.8+).
_PICKLE_PROTOCOL = 5


class NullCache:
    """Cache stand-in that stores nothing and never hits."""

    def get(self, key: str):
        return None

    def put(self, key: str, payload) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "NullCache()"


class ArtifactCache:
    """Content-addressed artifact store under one directory.

    Plans are stored as binary images (``.img``), everything else as
    pickles (``.pkl``); ``get`` transparently resolves whichever kind
    the key was written as.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str, suffix: str = ".pkl") -> Path:
        return self.directory / key[:2] / f"{key}{suffix}"

    def _touch(self, path: Path) -> None:
        """Best-effort read-recency marker for the LRU prune.

        ``prune`` orders victims by ``st_mtime``; without this, reads
        never refresh the timestamp and "LRU" degrades to write-time
        FIFO — evicting exactly the hot entries (every shard's plan-
        pool artifacts) first.
        """
        try:
            os.utime(path)
        except OSError:
            pass

    def get(self, key: str):
        """Load a payload, treating any malformed artifact as a miss."""
        img_path = self.path_for(key, ".img")
        if img_path.exists():
            from .imageio import read_plan_image

            try:
                payload = read_plan_image(img_path, use_mmap=True)
            except Exception:
                # Bad magic/version/checksum or undecodable payload:
                # drop the image and fall through to the pickle (then
                # a miss).
                try:
                    img_path.unlink()
                except OSError:
                    pass
            else:
                self.hits += 1
                self._touch(img_path)
                return payload
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated write, foreign file, unpicklable schema drift:
            # drop the artifact and recompute.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        self._touch(path)
        return payload

    def put(self, key: str, payload) -> None:
        """Atomically persist a payload; IO failures are non-fatal."""
        from ..sim.plan import ExecutionPlan
        from .imageio import dump_plan

        if isinstance(payload, ExecutionPlan):
            path = self.path_for(key, ".img")
            writer = lambda fh: fh.write(dump_plan(payload))  # noqa: E731
        else:
            path = self.path_for(key)
            writer = lambda fh: pickle.dump(  # noqa: E731
                payload, fh, protocol=_PICKLE_PROTOCOL
            )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    writer(fh)
                    # Flush to stable storage BEFORE the rename: on a
                    # power cut the rename may survive while the data
                    # does not, leaving a renamed-but-empty artifact —
                    # exactly the torn state the tmp file exists to
                    # prevent.  (get() would recover by dropping it,
                    # but a checkpoint-of-record cache should not rely
                    # on its own corruption path.)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return None

    # -- maintenance ---------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            list(self.directory.glob("*/*.pkl"))
            + list(self.directory.glob("*/*.img"))
        )

    @staticmethod
    def _stat_entries(paths: list[Path]) -> list[tuple[Path, os.stat_result]]:
        """Stat every entry, skipping files another process just
        removed — listing and statting can never be atomic together."""
        stats = []
        for path in paths:
            try:
                stats.append((path, path.stat()))
            except OSError:
                continue  # unlinked (or pruned) between glob and stat
        return stats

    def size_bytes(self) -> int:
        return sum(st.st_size for _, st in self._stat_entries(self.entries()))

    def stale_tmp_files(
        self, max_age_s: float = _TMP_MAX_AGE_S
    ) -> list[Path]:
        """Orphaned ``.tmp`` files: a writer was SIGKILLed between its
        tmp write and the rename, so nothing will ever rename or unlink
        them.  Only files older than ``max_age_s`` qualify — a young
        tmp may belong to a writer that is mid-``put`` right now."""
        if not self.directory.is_dir():
            return []
        cutoff = time.time() - max_age_s
        stale = []
        for path in self.directory.glob("*/.*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    stale.append(path)
            except OSError:
                continue  # the writer finished (renamed) mid-scan
        return sorted(stale)

    def _sweep_stale_tmp(self, max_age_s: float = _TMP_MAX_AGE_S) -> int:
        removed = 0
        for path in self.stale_tmp_files(max_age_s):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    @contextlib.contextmanager
    def _maintenance_lock(self):
        """Advisory inter-process lock serializing ``prune``/``clear``.

        Concurrent maintenance runs would race each other's unlinks
        into double-eviction (both see the same total, both remove);
        readers and writers are *not* locked — ``get`` already treats
        a vanished or torn artifact as a plain miss and ``put`` is an
        atomic tmp-file + rename.  Falls back to unlocked on platforms
        without :mod:`fcntl` or on unwritable directories (the
        operations themselves stay safe, just less coordinated).
        """
        if fcntl is None:
            yield
            return
        lock_path = self.directory / ".maintenance.lock"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            yield
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used artifacts down to ``max_bytes``.

        Returns the number of artifacts removed.  Uses ``st_mtime`` as
        the recency signal; ``get`` refreshes it on every successful
        read (best-effort ``os.utime``), so eviction order is true
        least-recently-*used*, not write-time FIFO.
        Safe against concurrent readers/writers: eviction holds the
        maintenance lock, tolerates entries vanishing underneath it,
        and never touches in-progress tmp files — though it does sweep
        *stale* ones (orphans of writers killed mid-``put``, older
        than an hour), which otherwise leak forever.
        """
        with self._maintenance_lock():
            self._sweep_stale_tmp()
            entries = self._stat_entries(self.entries())
            entries.sort(key=lambda e: e[1].st_mtime)
            total = sum(st.st_size for _, st in entries)
            removed = 0
            for path, st in entries:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= st.st_size
                removed += 1
            return removed

    def clear(self) -> None:
        with self._maintenance_lock():
            self._sweep_stale_tmp(max_age_s=0.0)
            for path in self.entries():
                try:
                    path.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ArtifactCache({str(self.directory)!r})"


# ---------------------------------------------------------------------
# Process-wide default cache
# ---------------------------------------------------------------------
_default_cache: ArtifactCache | NullCache | None = None


def configure_cache(
    directory: str | os.PathLike | None, enabled: bool = True
) -> ArtifactCache | NullCache:
    """Set the process-wide default cache and return it.

    ``configure_cache(None)`` or ``enabled=False`` disables caching.
    """
    global _default_cache
    if not enabled or directory is None:
        _default_cache = NullCache()
    else:
        _default_cache = ArtifactCache(directory)
    return _default_cache


def get_cache() -> ArtifactCache | NullCache:
    """The default cache, resolved lazily from the environment.

    Resolution order: an explicit :func:`configure_cache` call, then
    ``REPRO_NO_CACHE`` (truthy disables), then ``REPRO_CACHE_DIR``,
    else caching is off.
    """
    global _default_cache
    if _default_cache is None:
        if os.environ.get("REPRO_NO_CACHE"):
            _default_cache = NullCache()
        elif os.environ.get("REPRO_CACHE_DIR"):
            _default_cache = ArtifactCache(os.environ["REPRO_CACHE_DIR"])
        else:
            _default_cache = NullCache()
    return _default_cache


def cache_env(cache: ArtifactCache | NullCache | None = None) -> dict:
    """Environment overrides that make a worker process inherit
    ``cache`` (used by the orchestrator's pool initializer)."""
    cache = cache if cache is not None else get_cache()
    if isinstance(cache, ArtifactCache):
        return {"REPRO_CACHE_DIR": str(cache.directory), "REPRO_NO_CACHE": ""}
    return {"REPRO_CACHE_DIR": "", "REPRO_NO_CACHE": "1"}


# ---------------------------------------------------------------------
# Memoized compile + plan lowering
# ---------------------------------------------------------------------
def cached_compile(
    dag: DAG,
    config,
    topology: Topology = DEFAULT_TOPOLOGY,
    seed: int = 0,
    mapping_strategy: str = "conflict_aware",
    validate_input: bool = False,
    keep: frozenset[int] | set[int] | tuple[int, ...] = (),
    cache: ArtifactCache | NullCache | None = None,
) -> CompileResult:
    """``compile_dag`` memoized through the artifact cache.

    Semantically identical to :func:`repro.compiler.compile_dag` for
    every supported argument combination; ``trace_occupancy`` runs are
    deliberately not cached (call ``compile_dag`` directly for those).
    On a hit the stored result's ``node_map`` is re-derived for the
    requesting DAG via structural node digests, so hits are valid even
    when the caller's node numbering differs from the original
    compilation's.
    """
    cache = cache if cache is not None else get_cache()
    if isinstance(cache, NullCache):
        return compile_dag(
            dag,
            config,
            topology=topology,
            seed=seed,
            mapping_strategy=mapping_strategy,
            validate_input=validate_input,
            keep=keep,
        )
    digests = node_digests(dag)
    keep_digests = tuple(
        digests[node] for node in keep if dag.op(node) is not OpType.INPUT
    )
    key = compile_key(
        dag,
        config,
        topology,
        seed,
        mapping_strategy,
        keep_digests=keep_digests,
        digests=digests,
    )
    payload = cache.get(key)
    if payload is not None:
        try:
            result: CompileResult = payload["result"]
            var_by_digest: dict[bytes, int] = payload["var_by_digest"]
            node_map = tuple(var_by_digest[d] for d in digests)
            result.node_map = node_map
        except (KeyError, TypeError, AttributeError):
            payload = None  # schema drift — recompile below
        else:
            result.cache_key = key
            return result
    result = compile_dag(
        dag,
        config,
        topology=topology,
        seed=seed,
        mapping_strategy=mapping_strategy,
        validate_input=validate_input,
        keep=keep,
    )
    cache.put(
        key,
        {
            "result": result,
            "var_by_digest": dict(zip(digests, result.node_map)),
        },
    )
    result.cache_key = key
    return result


def cached_plan(
    result: CompileResult,
    interconnect: Interconnect | None = None,
    cache: ArtifactCache | NullCache | None = None,
):
    """Memoized :meth:`CompileResult.plan` lowering.

    Falls back to a live lowering when the result did not come through
    :func:`cached_compile` (no ``cache_key``) or caching is off.
    """
    cache = cache if cache is not None else get_cache()
    base_key = getattr(result, "cache_key", None)
    if isinstance(cache, NullCache) or base_key is None:
        return result.plan(interconnect)
    topology = (
        DEFAULT_TOPOLOGY if interconnect is None else interconnect.topology
    )
    key = plan_key(base_key, topology)
    plan = cache.get(key)
    if plan is None:
        plan = result.plan(interconnect)
        cache.put(key, plan)
    return plan


def cached_fused_plan(
    result: CompileResult,
    interconnect: Interconnect | None = None,
    cache: ArtifactCache | NullCache | None = None,
):
    """Memoized super-op fusion (:func:`repro.sim.fused.fuse_plan`) of
    a compilation's lowered plan.

    Layered on :func:`cached_plan`: a warm cache serves the fused form
    directly without re-lowering or re-fusing; a cold one lowers,
    fuses and stores both artifacts.  Falls back to a live fusion when
    caching is off or the result has no ``cache_key``.
    """
    from ..sim.fused import fuse_plan  # local: sim must not be a hard dep here

    cache = cache if cache is not None else get_cache()
    base_key = getattr(result, "cache_key", None)
    if isinstance(cache, NullCache) or base_key is None:
        return fuse_plan(cached_plan(result, interconnect, cache))
    topology = (
        DEFAULT_TOPOLOGY if interconnect is None else interconnect.topology
    )
    key = fused_key(plan_key(base_key, topology))
    fused = cache.get(key)
    if fused is None:
        fused = fuse_plan(cached_plan(result, interconnect, cache))
        cache.put(key, fused)
    return fused


def cached_codegen_source(
    fused, cache: ArtifactCache | NullCache | None = None
) -> str:
    """Generated-sweep source for a fused plan, memoized by content.

    The source (:func:`repro.sim.fused.codegen_source`) is a pure
    function of the fused plan, keyed by its fingerprint — so every
    process (serving workers included) compiling the same plan shares
    one generation, and the artifact survives restarts.
    """
    from ..sim.fused import codegen_source

    cache = cache if cache is not None else get_cache()
    key = codegen_key(fused.fingerprint)
    source = cache.get(key)
    if not isinstance(source, str):
        source = codegen_source(fused)
        cache.put(key, source)
    return source
