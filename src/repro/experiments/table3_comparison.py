"""Table III: the headline cross-platform comparison.

Aggregates the fig. 14 runs into the paper's summary table: throughput,
speedup over CPU, power, and EDP for both regimes (small suite and
large PCs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import LARGE_CORE_CONFIG, MIN_EDP_CONFIG
from ..sim.area import area_of
from ..workloads import DEFAULT_SCALE
from .fig14_throughput import ThroughputResult, run_large, run_small

#: Paper Table III reference values (GOPS / speedup-vs-CPU / W).
PAPER_SMALL = {
    "DPU-v2": (4.2, 3.5, 0.11),
    "DPU": (3.1, 2.6, 0.07),
    "CPU": (1.2, 1.0, 55.0),
    "GPU": (0.4, 0.3, 98.0),
}
PAPER_LARGE = {
    "DPU-v2": (34.6, 20.7, 1.1),
    "SPU": (22.2, 13.3, 16.0),
    "CPU_SPU": (1.7, 1.0, 61.0),
    "CPU": (1.8, 1.1, 65.0),
    "GPU": (4.6, 2.8, 155.0),
}

_MODEL_POWER_W = {
    "DPU": 0.07,
    "CPU": 55.0,
    "GPU": 98.0,
    "SPU": 16.0,
    "CPU_SPU": 61.0,
}


@dataclass(frozen=True)
class Table3Result:
    small: ThroughputResult
    large: ThroughputResult
    small_area_mm2: float
    large_area_mm2: float


def run(
    scale: float = DEFAULT_SCALE,
    large_scale: float = 0.01,
    seed: int = 0,
    jobs: int | None = None,
) -> Table3Result:
    return Table3Result(
        small=run_small(scale=scale, seed=seed, jobs=jobs),
        large=run_large(scale=large_scale, seed=seed, jobs=jobs),
        small_area_mm2=area_of(MIN_EDP_CONFIG).total_mm2,
        large_area_mm2=4 * area_of(LARGE_CORE_CONFIG).total_mm2,
    )


def _rows(result: ThroughputResult, paper: dict, cpu_key: str) -> list:
    cpu_gops = result.geomean(cpu_key)
    rows = []
    for platform in result.platforms:
        gops = result.geomean(platform)
        paper_gops, paper_speedup, paper_power = paper[platform]
        power = (
            result.dpu_v2_power_w
            if platform == "DPU-v2"
            else _MODEL_POWER_W[platform]
        )
        rows.append(
            (
                platform,
                round(gops, 2),
                f"{gops / cpu_gops:.1f}x",
                f"{paper_speedup:.1f}x",
                round(power, 2),
                paper_gops,
            )
        )
    return rows


def render(result: Table3Result) -> str:
    from ..analysis import format_table

    small = format_table(
        ["platform", "GOPS", "speedup", "paper speedup", "W", "paper GOPS"],
        _rows(result.small, PAPER_SMALL, "CPU"),
        title=(
            f"Table III (small suite) — DPU-v2 area "
            f"{result.small_area_mm2:.1f}mm2 (paper 3.2mm2)"
        ),
    )
    large = format_table(
        ["platform", "GOPS", "speedup", "paper speedup", "W", "paper GOPS"],
        _rows(result.large, PAPER_LARGE, "CPU_SPU"),
        title=(
            f"Table III (large PCs) — DPU-v2 (L) 4-core area "
            f"{result.large_area_mm2:.1f}mm2 (paper 40.4mm2)"
        ),
    )
    return small + "\n\n" + large
