"""Seeded differential fuzzing over the synthetic scenario families.

``fuzz(budget=N, seed=S, jobs=J)`` derives ``N`` scenarios from one
master seed — round-robin over the generator families so every family
is exercised even at small budgets, with sizes spanning degenerate
(``n=3``) through a few hundred nodes, random architecture points from
:data:`CONFIG_POOL`, and per-scenario value seeds — then fans the
differential oracle (:func:`repro.verify.differential.check_scenario`)
out over :func:`repro.runner.orchestrator.parallel_map`.

Scenario derivation is a pure function of ``(budget, seed, families,
fault)``: re-running with the same arguments replays the identical
scenario list, so a CI failure is reproducible locally from the two
numbers in the log line.

On mismatch, the failing DAG is shrunk to a minimal reproducer
(:func:`repro.verify.shrink.shrink_dag`) and written as a replayable
artifact under ``results/repro_cases/`` (:mod:`repro.verify.
artifacts`).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import VerificationError
from ..runner.orchestrator import parallel_map
from ..workloads.synth import MIN_NODES, SYNTH_FAMILIES, SynthParams
from .artifacts import ReproCase, write_case
from .differential import (
    FAULTS,
    Scenario,
    ScenarioOutcome,
    check_scenario,
    diff_check_dag,
)
from .shrink import ShrinkResult, shrink_dag

#: Architecture points the fuzzer samples.  Mostly roomy register
#: files (so compilation always succeeds) plus one deliberately tight
#: point that forces the spill machinery; scenarios it cannot fit are
#: reported as skipped, not failed.
CONFIG_POOL: tuple[str, ...] = (
    "D1-B8-R16",
    "D2-B8-R16",
    "D2-B8-R8",
    "D2-B16-R32",
    "D3-B16-R16",
    "D3-B32-R32",
)


def make_scenarios(
    budget: int,
    seed: int = 0,
    families: Iterable[str] | None = None,
    fault: str | None = None,
    configs: Iterable[str] | None = None,
    image_all: bool = False,
) -> list[Scenario]:
    """Derive the deterministic scenario list for one fuzzing run.

    With ``image_all`` the binary-image round-trip stage runs on
    *every* scenario instead of its default every-fourth slice (the
    CI ``image-roundtrip`` job uses this).

    Raises:
        VerificationError: Unknown family/fault name or a budget < 1.
    """
    if budget < 1:
        raise VerificationError(f"budget must be >= 1, got {budget}")
    chosen = tuple(families) if families else tuple(sorted(SYNTH_FAMILIES))
    unknown = [f for f in chosen if f not in SYNTH_FAMILIES]
    if unknown:
        raise VerificationError(
            f"unknown synth families {unknown}; choose from "
            f"{sorted(SYNTH_FAMILIES)}"
        )
    if fault is not None and fault not in FAULTS:
        raise VerificationError(
            f"unknown fault {fault!r}; choose from {sorted(FAULTS)}"
        )
    pool = tuple(configs) if configs else CONFIG_POOL
    rng = random.Random(seed)
    scenarios: list[Scenario] = []
    for i in range(budget):
        family = chosen[i % len(chosen)]
        tier = rng.random()
        if tier < 0.15:  # degenerate / tiny
            n = rng.randint(MIN_NODES, 9)
        elif tier < 0.85:  # bread and butter
            n = rng.randint(10, 120)
        else:  # chunky
            n = rng.randint(121, 260)
        kwargs = _family_kwargs(rng, family, n)
        # Every fourth scenario also exercises the partition-parallel
        # compile path, a disjoint every-fourth slice drives the live
        # micro-batcher (served-vs-direct), a third disjoint slice
        # re-executes through the fused/codegen engines
        # (fused-vs-batch), and the remaining slice round-trips the
        # compiled artifacts through binary images
        # (image-roundtrip).  All assignments are derived WITHOUT
        # consuming the master rng, so the (family, n, seed, config,
        # value_seed, batch) stream — and with it the pinned
        # verify_synth golden — is unchanged from earlier revisions.
        partition_threshold = None
        if i % 4 == 3 and n > 2 * MIN_NODES:
            partition_threshold = max(1, n // (2 + i % 3))
        scenarios.append(
            Scenario(
                params=SynthParams(
                    family=family,
                    n=n,
                    seed=rng.randrange(2**31),
                    kwargs=tuple(sorted(kwargs.items())),
                ),
                config_label=pool[rng.randrange(len(pool))],
                value_seed=rng.randrange(2**31),
                batch=rng.choice((1, 2, 4)),
                fault=fault,
                partition_threshold=partition_threshold,
                serve=i % 4 == 1,
                fused=i % 4 == 2,
                image=image_all or i % 4 == 0,
            )
        )
    return scenarios


def _family_kwargs(
    rng: random.Random, family: str, n: int
) -> dict[str, object]:
    """Occasionally push a family-specific knob to an extreme."""
    if rng.random() < 0.6:
        return {}  # family defaults
    if family == "layered":
        return {
            "fill_prob": rng.choice((0.0, 0.25, 1.0)),
            "width": rng.choice((0, 2, 3)),
        }
    if family == "wide":
        return {"fan_in": rng.randint(2, 6)}
    if family == "diamond":
        return {"paths": rng.randint(2, 6)}
    if family == "near_chain":
        return {"skip_prob": rng.choice((0.0, 0.3, 0.6))}
    if family == "disconnected":
        return {"components": rng.randint(1, max(1, min(4, n // MIN_NODES)))}
    if family == "reuse":
        return {"pool_size": rng.randint(2, 6)}
    if family == "skewed_fanout":
        return {"hubs": rng.randint(1, max(1, min(3, n // 3)))}
    return {}


@dataclass(frozen=True)
class FuzzFailure:
    """One mismatch, shrunk and (optionally) written to disk."""

    outcome: ScenarioOutcome
    shrunk_nodes: int
    shrink_checks: int
    case_path: Path | None


@dataclass
class FuzzReport:
    """Aggregate result of one fuzzing run."""

    budget: int
    seed: int
    outcomes: list[ScenarioOutcome]
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def checked(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "skipped")

    def by_family(self) -> dict[str, dict[str, int]]:
        """Per-family tallies for reports and snapshots."""
        table: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            row = table.setdefault(
                o.scenario.params.family,
                {"scenarios": 0, "ok": 0, "skipped": 0, "mismatches": 0,
                 "nodes": 0, "cycles": 0},
            )
            row["scenarios"] += 1
            row["nodes"] += o.nodes
            row["cycles"] += o.cycles
            key = {"ok": "ok", "skipped": "skipped"}.get(
                o.status, "mismatches"
            )
            row[key] += 1
        return dict(sorted(table.items()))

    def render(self) -> str:
        lines = [
            f"fuzz: budget {self.budget}, seed {self.seed} — "
            f"{self.checked} ok, {self.skipped} skipped (spill-bound), "
            f"{len(self.failures)} mismatches"
        ]
        header = f"{'family':16s} {'runs':>5s} {'ok':>5s} " \
                 f"{'skip':>5s} {'fail':>5s} {'nodes':>8s}"
        lines.append(header)
        for family, row in self.by_family().items():
            lines.append(
                f"{family:16s} {row['scenarios']:5d} {row['ok']:5d} "
                f"{row['skipped']:5d} {row['mismatches']:5d} "
                f"{row['nodes']:8d}"
            )
        for failure in self.failures:
            o = failure.outcome
            lines.append(
                f"MISMATCH {o.scenario.params.family} "
                f"n={o.scenario.params.n} seed={o.scenario.params.seed}: "
                f"{o.mismatch} -> shrunk to {failure.shrunk_nodes} nodes"
                + (f" ({failure.case_path})" if failure.case_path else "")
            )
        return "\n".join(lines)


def _shrunk_threshold(scenario, candidate) -> int | None:
    """Keep the partitioned path active while shrinking a partitioned
    scenario: scale the threshold down so the candidate still splits
    into at least two pieces."""
    if scenario.partition_threshold is None:
        return None
    return max(1, min(scenario.partition_threshold, candidate.num_nodes // 2))


def _shrink_failure(
    outcome: ScenarioOutcome,
    write_artifacts: bool,
    out_dir: str | Path | None,
) -> FuzzFailure:
    """Minimize one failing scenario and persist the repro case."""
    scenario = outcome.scenario
    dag = scenario.params.build()
    config = scenario.config()

    def still_fails(candidate) -> bool:
        report = diff_check_dag(
            candidate,
            config,
            value_seed=scenario.value_seed,
            batch=scenario.batch,
            fault=scenario.fault,
            partition_threshold=_shrunk_threshold(scenario, candidate),
            partition_jobs=scenario.partition_jobs,
            serve=scenario.serve,
            fused=scenario.fused,
            image=scenario.image,
        )
        return report.mismatch is not None

    shrunk: ShrinkResult = shrink_dag(dag, still_fails)
    case_path: Path | None = None
    if write_artifacts:
        # Record the mismatch as observed on the *shrunk* DAG — the
        # stage can legitimately sharpen while shrinking.
        final = diff_check_dag(
            shrunk.dag,
            config,
            value_seed=scenario.value_seed,
            batch=scenario.batch,
            fault=scenario.fault,
            partition_threshold=_shrunk_threshold(scenario, shrunk.dag),
            partition_jobs=scenario.partition_jobs,
            serve=scenario.serve,
            fused=scenario.fused,
            image=scenario.image,
        )
        case = ReproCase(
            scenario=scenario,
            mismatch=final.mismatch or outcome.mismatch,
            shrunk_dag=shrunk.dag,
            original_nodes=dag.num_nodes,
            shrink_checks=shrunk.checks,
        )
        case_path = write_case(case, out_dir)
    return FuzzFailure(
        outcome=outcome,
        shrunk_nodes=shrunk.dag.num_nodes,
        shrink_checks=shrunk.checks,
        case_path=case_path,
    )


def fuzz(
    budget: int,
    seed: int = 0,
    jobs: int | None = None,
    families: Iterable[str] | None = None,
    fault: str | None = None,
    configs: Iterable[str] | None = None,
    write_artifacts: bool = True,
    out_dir: str | Path | None = None,
    progress: bool | Callable[[int, int], None] = False,
    image_all: bool = False,
) -> FuzzReport:
    """Run one differential fuzzing campaign.

    Args:
        budget: Number of scenarios to generate and check.
        seed: Master seed; (budget, seed, families, fault) fully
            determines the campaign.
        jobs: Worker processes for the oracle fan-out (``None`` =
            ``REPRO_JOBS`` or serial).
        families: Restrict to these generator families (default: all).
        fault: Inject a named executor fault (:data:`repro.verify.
            differential.FAULTS`) into every scenario — for tests and
            demos of the harness itself.
        configs: Override :data:`CONFIG_POOL` labels.
        write_artifacts: Write shrunk repro cases to ``out_dir``.
        out_dir: Case directory (default ``results/repro_cases/``).
        image_all: Run the binary-image round-trip stage on every
            scenario, not just its default every-fourth slice.
        progress: Progress callback or True for a stderr ticker.

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is False iff any scenario
        mismatched (shrunk reproducers are in ``report.failures``).
    """
    scenarios = make_scenarios(
        budget, seed=seed, families=families, fault=fault, configs=configs,
        image_all=image_all,
    )
    outcomes = parallel_map(
        check_scenario, scenarios, jobs=jobs, progress=progress, desc="fuzz"
    )
    report = FuzzReport(budget=budget, seed=seed, outcomes=outcomes)
    for outcome in outcomes:
        if outcome.status == "mismatch":
            report.failures.append(
                _shrink_failure(outcome, write_artifacts, out_dir)
            )
    return report
