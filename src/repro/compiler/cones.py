"""Cone construction: tree-mappable subgraphs of the binarized DAG.

Step 1 of the compiler decomposes the DAG into subgraphs that each map
onto one PE (sub)tree.  Following fig. 9(c) of the paper, *any*
connected subgraph with 2-input nodes, a single sink, and longest path
length <= the tree depth can be mapped — non-tree subgraphs are handled
by replicating shared nodes.

We realize that via *unrolling*: the cone of a sink node ``s`` is the
complete expansion of ``s``'s uncomputed ancestor region into a binary
tree.  A node shared by two paths simply appears twice (replication);
branches that bottom out early (one operand already computed) are
padded with PASS stages so every leaf sits at the port level of the PE
tree, because register read ports only feed layer-1 PEs.

The cone's *height* is the slot depth it needs; its *leaves* are
already-computed variables (earlier blocks' outputs or external
inputs); its *nodes* are the uncomputed DAG nodes it covers — these
become computed once the enclosing block executes.

Unrolled cones are stored in *heap layout* (``kinds``/``vals``
position arrays: the root at position 0, children of position ``p`` at
``2p + 1`` / ``2p + 2``) so the decomposer and the placer never chase
object trees on the hot path; the object form (:data:`Inst`) is still
available through :attr:`Cone.root`, built lazily for tests and
analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError
from ..graphs import DAG, OpType


@dataclass(frozen=True)
class LeafInst:
    """A cone leaf: reads variable ``var`` from a register port."""

    var: int


@dataclass(frozen=True)
class OpInst:
    """An arithmetic instance computing DAG node ``node``."""

    node: int
    op: OpType
    left: "Inst"
    right: "Inst"


@dataclass(frozen=True)
class PassInst:
    """A padding stage forwarding its (left) child unchanged."""

    child: "Inst"


Inst = LeafInst | OpInst | PassInst

#: Heap-layout position kinds.
K_ABSENT = 0
K_LEAF = 1
K_PASS = 2
K_ADD = 3
K_MUL = 4

_KIND_OF_OP = {OpType.ADD: K_ADD, OpType.MUL: K_MUL}
_OP_OF_KIND = {K_ADD: OpType.ADD, K_MUL: OpType.MUL}


@dataclass(frozen=True)
class Cone:
    """One tree-mappable subgraph (fig. 9(c)), fully unrolled.

    Attributes:
        sink: DAG node computed at the cone root.
        height: PE layers needed (= slot depth); leaves sit at depth
            ``height`` below the root.
        kinds: Per heap position, one of ``K_ABSENT``/``K_LEAF``/
            ``K_PASS``/``K_ADD``/``K_MUL``.
        vals: Per heap position, the leaf variable (``K_LEAF``) or the
            DAG node computed (``K_ADD``/``K_MUL``); ``-1`` otherwise.
        nodes: Distinct uncomputed DAG nodes covered by the cone.
        leaf_vars: Distinct precomputed variables read at the ports.
        num_instances: PE count used, including PASS padding and
            replicas.
    """

    sink: int
    height: int
    kinds: tuple[int, ...]
    vals: tuple[int, ...]
    nodes: frozenset[int]
    leaf_vars: frozenset[int]
    num_instances: int

    @property
    def root(self) -> Inst:
        """Object form of the unrolled tree (built lazily from layout)."""
        cached = getattr(self, "_root", None)
        if cached is None:
            cached = self._build_inst(0)
            object.__setattr__(self, "_root", cached)
        return cached

    # The lazily-built object tree is derived data — keep it out of
    # pickles (cache artifacts, worker round-trips).
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_root", None)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def _build_inst(self, pos: int) -> Inst:
        kind = self.kinds[pos]
        if kind == K_LEAF:
            return LeafInst(var=self.vals[pos])
        if kind == K_PASS:
            return PassInst(child=self._build_inst(2 * pos + 1))
        if kind in (K_ADD, K_MUL):
            return OpInst(
                node=self.vals[pos],
                op=_OP_OF_KIND[kind],
                left=self._build_inst(2 * pos + 1),
                right=self._build_inst(2 * pos + 2),
            )
        raise CompileError(f"cone {self.sink}: empty heap position {pos}")


def cone_height(dag: DAG, computed, node: int, cap: int) -> int:
    """Height of ``node``'s uncomputed cone, capped at ``cap + 1``.

    ``computed`` is an indexable truth map (list/array of bool) marking
    nodes whose values already live outside the datapath.  The returned
    value is the PE-tree depth needed to evaluate ``node``; any value
    greater than ``cap`` is reported as ``cap + 1`` ("does not fit") so
    callers can bucket without unbounded recursion.

    Iterative post-order walk — cones deeper than ``cap`` are cut off,
    so the walk visits at most ``O(2^cap)`` instances.
    """
    if computed[node]:
        return 0
    overflow = cap + 1
    preds_of = dag._preds
    # (node, depth_from_root); explicit stack with memo keyed by node
    # *at this computed-state*: heights only depend on the computed map,
    # so a per-call memo is sound and keeps replication cheap.
    memo: dict[int, int] = {}

    def height_of(n: int, budget: int) -> int:
        if computed[n]:
            return 0
        if budget <= 0:
            return overflow
        cached = memo.get(n)
        if cached is not None:
            return cached
        worst = 0
        for p in preds_of[n]:
            h = height_of(p, budget - 1)
            if h >= budget:
                memo[n] = overflow
                return overflow
            if h > worst:
                worst = h
        result = worst + 1
        memo[n] = result
        return result

    return height_of(node, cap)


def build_cone(dag: DAG, computed, sink: int, max_height: int) -> Cone | None:
    """Unroll ``sink``'s uncomputed region into a cone.

    Returns ``None`` if the region is deeper than ``max_height`` (the
    candidate is not schedulable yet) or if ``sink`` is already
    computed.
    """
    height = cone_height(dag, computed, sink, max_height)
    if height == 0 or height > max_height:
        return None

    size = (1 << (height + 1)) - 1
    kinds = [K_ABSENT] * size
    vals = [-1] * size
    nodes: set[int] = set()
    leaf_vars: set[int] = set()
    count = 0
    preds_of = dag._preds
    ops_of = dag._ops

    # Iterative unroll into heap positions.  ``below`` is the number of
    # levels between this instance and the port row.
    stack: list[tuple[int, int, int]] = [(sink, 0, height)]
    while stack:
        n, pos, below = stack.pop()
        if computed[n]:
            # Pad with PASS stages down to the port level.
            leaf_vars.add(n)
            for _ in range(below):
                kinds[pos] = K_PASS
                count += 1
                pos = 2 * pos + 1
            kinds[pos] = K_LEAF
            vals[pos] = n
            continue
        preds = preds_of[n]
        if len(preds) != 2:
            raise CompileError(
                f"node {n} has fan-in {len(preds)}; DAG must be binarized"
            )
        nodes.add(n)
        count += 1
        kinds[pos] = _KIND_OF_OP[ops_of[n]]
        vals[pos] = n
        stack.append((preds[1], 2 * pos + 2, below - 1))
        stack.append((preds[0], 2 * pos + 1, below - 1))

    return Cone(
        sink=sink,
        height=height,
        kinds=tuple(kinds),
        vals=tuple(vals),
        nodes=frozenset(nodes),
        leaf_vars=frozenset(leaf_vars),
        num_instances=count,
    )


def cone_depth_of(inst: Inst) -> int:
    """Height of an instance subtree (LeafInst = 0); test helper."""
    if isinstance(inst, LeafInst):
        return 0
    if isinstance(inst, PassInst):
        return 1 + cone_depth_of(inst.child)
    return 1 + max(cone_depth_of(inst.left), cone_depth_of(inst.right))


def evaluate_cone(root: Inst, values: dict[int, float]) -> float:
    """Reference evaluation of a cone given leaf-variable values.

    Used by tests to check placement/datapath agreement.
    """
    if isinstance(root, LeafInst):
        return values[root.var]
    if isinstance(root, PassInst):
        return evaluate_cone(root.child, values)
    a = evaluate_cone(root.left, values)
    b = evaluate_cone(root.right, values)
    return root.op.apply(a, b)
