"""Unit tests for traversal utilities."""

import pytest

from repro.errors import CycleError
from repro.graphs import (
    DAG,
    DAGBuilder,
    OpType,
    ancestors_within,
    arithmetic_longest_path,
    descendants_within,
    dfs_order,
    level_sets,
    longest_path_length,
    node_levels,
    reachable_from,
    topological_order,
    width_profile,
)
from repro.testing import make_chain_dag, make_random_dag, make_wide_dag


@pytest.fixture
def small() -> DAG:
    b = DAGBuilder()
    x, y = b.add_input(), b.add_input()
    s = b.add_add([x, y])
    p = b.add_mul([s, y])
    b.add_add([s, p])
    return b.build()


class TestTopologicalOrder:
    def test_respects_dependencies(self, small):
        order = topological_order(small)
        pos = {n: i for i, n in enumerate(order)}
        for node in small.nodes():
            for pred in small.predecessors(node):
                assert pos[pred] < pos[node]

    def test_covers_all_nodes(self):
        dag = make_random_dag(3)
        assert sorted(topological_order(dag)) == list(dag.nodes())

    def test_cycle_detection_via_raw_construction(self):
        # DAGBuilder cannot create cycles; forge one via DAG internals.
        dag = DAG(
            [OpType.INPUT, OpType.ADD, OpType.ADD], [[], [0, 2], [1, 1]]
        )
        with pytest.raises(CycleError):
            topological_order(dag)


class TestLevels:
    def test_leaves_are_level_zero(self, small):
        levels = node_levels(small)
        assert levels[0] == 0 and levels[1] == 0

    def test_levels_increase_along_edges(self, small):
        levels = node_levels(small)
        for node in small.nodes():
            for pred in small.predecessors(node):
                assert levels[node] > levels[pred]

    def test_level_sets_partition_nodes(self):
        dag = make_random_dag(5)
        groups = level_sets(dag)
        flat = [n for g in groups for n in g]
        assert sorted(flat) == list(dag.nodes())

    def test_width_profile_sums_to_nodes(self):
        dag = make_random_dag(7)
        assert sum(width_profile(dag)) == dag.num_nodes


class TestLongestPath:
    def test_chain_length(self):
        dag = make_chain_dag(length=10)
        # 10 arithmetic nodes in a chain plus the leaf level.
        assert longest_path_length(dag) == 11

    def test_wide_dag_is_shallow(self):
        dag = make_wide_dag(width=16)
        assert longest_path_length(dag) == 3

    def test_empty_dag(self):
        assert longest_path_length(DAGBuilder().build()) == 0

    def test_arithmetic_longest_path_excludes_leaves(self):
        dag = make_chain_dag(length=10)
        assert arithmetic_longest_path(dag) == 10


class TestDfsOrder:
    def test_is_permutation(self):
        dag = make_random_dag(9)
        pos = dfs_order(dag)
        assert sorted(pos) == list(range(dag.num_nodes))

    def test_predecessors_before_node(self, small):
        # Post-order from sinks: a node's ancestors get smaller
        # positions than the node itself.
        pos = dfs_order(small)
        for node in small.nodes():
            for pred in small.predecessors(node):
                assert pos[pred] < pos[node]


class TestNeighborhoods:
    def test_ancestors_within_distance_one(self, small):
        assert ancestors_within(small, 4, 1) == {2, 3}

    def test_ancestors_within_full_depth(self, small):
        assert ancestors_within(small, 4, 10) == {0, 1, 2, 3}

    def test_descendants_within(self, small):
        assert descendants_within(small, [0], 1) == {2}
        assert descendants_within(small, [0], 3) == {2, 3, 4}

    def test_reachable_from(self, small):
        assert reachable_from(small, [1]) == {2, 3, 4}
        assert reachable_from(small, [4]) == set()
