"""Unit tests for the instruction IR helpers."""

import pytest

from repro.arch import (
    ArchConfig,
    CopyInstr,
    CopyMove,
    ExecInstr,
    LoadInstr,
    NopInstr,
    PEOp,
    StoreInstr,
    StoreSlot,
    WriteSpec,
    consumed_vars,
    produced_vars,
    result_latency,
)


@pytest.fixture
def cfg():
    return ArchConfig(depth=2, banks=4, regs_per_bank=8)


def make_exec(cfg):
    return ExecInstr(
        bank_reads=((0, 10), (2, 11)),
        port_source=(0, 2, None, None),
        pe_ops=tuple([PEOp.ADD] + [PEOp.IDLE] * (cfg.num_pes - 1)),
        writes=(WriteSpec(pe=0, bank=1, var=12),),
        valid_rst=frozenset({2}),
    )


class TestMnemonics:
    def test_exec(self, cfg):
        assert make_exec(cfg).mnemonic == "exec"

    def test_copy_compact_threshold(self):
        small = CopyInstr(
            moves=tuple(
                CopyMove(src_bank=i, dst_bank=i + 4, var=i)
                for i in range(4)
            )
        )
        big = CopyInstr(
            moves=tuple(
                CopyMove(src_bank=i, dst_bank=i + 5, var=i)
                for i in range(5)
            )
        )
        assert small.mnemonic == "copy_4"
        assert big.mnemonic == "copy"

    def test_store_compact_threshold(self):
        small = StoreInstr(
            row=0, slots=tuple(StoreSlot(bank=i, var=i) for i in range(4))
        )
        big = StoreInstr(
            row=0, slots=tuple(StoreSlot(bank=i, var=i) for i in range(5))
        )
        assert small.mnemonic == "store_4"
        assert big.mnemonic == "store"

    def test_nop(self):
        assert NopInstr().mnemonic == "nop"


class TestDataflowHelpers:
    def test_exec_produced_consumed(self, cfg):
        instr = make_exec(cfg)
        assert consumed_vars(instr) == [(0, 10), (2, 11)]
        assert produced_vars(instr) == [(1, 12)]

    def test_copy_produced_consumed(self):
        instr = CopyInstr(
            moves=(CopyMove(src_bank=0, dst_bank=3, var=7,
                            free_source=True),)
        )
        assert consumed_vars(instr) == [(0, 7)]
        assert produced_vars(instr) == [(3, 7)]
        assert instr.valid_rst == frozenset({0})

    def test_load_produces_only(self):
        instr = LoadInstr(row=2, dests=((0, 5), (1, 6)))
        assert consumed_vars(instr) == []
        assert produced_vars(instr) == [(0, 5), (1, 6)]
        assert instr.valid_rst == frozenset()

    def test_store_consumes_only(self):
        instr = StoreInstr(
            row=1, slots=(StoreSlot(bank=2, var=9, free_source=True),)
        )
        assert consumed_vars(instr) == [(2, 9)]
        assert produced_vars(instr) == []
        assert instr.valid_rst == frozenset({2})

    def test_nop_neutral(self):
        assert consumed_vars(NopInstr()) == []
        assert produced_vars(NopInstr()) == []


class TestLatencies:
    def test_exec_latency_is_pipeline_depth(self, cfg):
        assert result_latency(make_exec(cfg), cfg) == cfg.pipeline_stages

    def test_copy_and_load_single_cycle(self, cfg):
        copy = CopyInstr(moves=(CopyMove(0, 1, 5),))
        load = LoadInstr(row=0, dests=((0, 5),))
        assert result_latency(copy, cfg) == 1
        assert result_latency(load, cfg) == 1

    def test_store_and_nop_zero(self, cfg):
        store = StoreInstr(row=0, slots=())
        assert result_latency(store, cfg) == 0
        assert result_latency(NopInstr(), cfg) == 0


class TestExecHelpers:
    def test_reads_of_bank(self, cfg):
        instr = make_exec(cfg)
        assert instr.reads_of_bank(0) == 10
        assert instr.reads_of_bank(1) is None

    def test_active_and_arithmetic_counts(self, cfg):
        instr = make_exec(cfg)
        assert instr.active_pes() == 1
        assert instr.arithmetic_pes() == 1
        with_pass = ExecInstr(
            bank_reads=(),
            port_source=(None,) * cfg.banks,
            pe_ops=tuple(
                [PEOp.PASS_A, PEOp.MUL] + [PEOp.IDLE] * (cfg.num_pes - 2)
            ),
            writes=(),
        )
        assert with_pass.active_pes() == 2
        assert with_pass.arithmetic_pes() == 1
