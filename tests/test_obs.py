"""The observability layer: metrics invariants, trace well-formedness.

Three property groups (hypothesis) plus integration checks:

* histogram bucketing — cumulative bucket counts are monotone and the
  implicit ``+Inf`` bucket always equals the observation count;
* Prometheus text exposition — everything the registry renders parses
  back with :func:`parse_prometheus` to the exact same samples (the
  grammar round-trip CI relies on);
* span trees — every drained trace is a forest: unique ids, parents
  exist, children nest inside their parent's interval — identical
  guarantees under ``parallel_map`` ``jobs=1`` (inline) and ``jobs=N``
  (process pool with span shipping);
* request-id threading — the correlation id survives service,
  router-hop, and rejection paths unchanged.
"""

from __future__ import annotations

import asyncio
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import trace
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    render_registries,
)
from repro.runner import parallel_map
from repro.serve import (
    BatchPolicy,
    LocalShard,
    ProgramSpec,
    ShardRouter,
    build_served_program,
    router_dispatch,
)

SPEC = ProgramSpec(
    name="synth_layered", config_label="D2-B8-R16", scale=0.01
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_trace():
    """Leave no trace state behind, whatever a test does."""
    trace.disable()
    trace.drain()
    yield
    trace.disable()
    trace.drain()


# ---------------------------------------------------------------------
# Histogram bucketing invariants (hypothesis)
# ---------------------------------------------------------------------
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestHistogramInvariants:
    @given(
        bounds=st.lists(finite, min_size=1, max_size=12, unique=True),
        values=st.lists(finite, max_size=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_cumulative_counts(self, bounds, values):
        h = Histogram("h_test", "test histogram", buckets=tuple(bounds))
        for v in values:
            h.observe(v)
        cum = h.cumulative()
        assert len(cum) == len(h.buckets) + 1
        assert all(a <= b for a, b in zip(cum, cum[1:]))
        assert cum[-1] == h.count() == len(values)
        # Cumulative count at bound b is exactly |{v : v <= b}|.
        for bound, c in zip(h.buckets, cum):
            assert c == sum(1 for v in values if v <= bound)
        assert h.sum() == sum(values, 0.0)

    @given(
        bounds=st.lists(finite, min_size=1, max_size=8, unique=True),
        values=st.lists(st.floats(-1e9, 1e9), max_size=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_rendered_buckets_match_cumulative(self, bounds, values):
        h = Histogram("h_render", "test histogram", buckets=tuple(bounds))
        for v in values:
            h.observe(v)
        doc = parse_prometheus(
            h.render() + "\n"
        )
        buckets = {
            labels["le"]: value
            for name, labels, value in doc["samples"]
            if name == "h_render_bucket"
        }
        assert buckets["+Inf"] == len(values)
        for bound, c in zip(h.buckets, h.cumulative()):
            rendered = [
                v for le, v in buckets.items()
                if le != "+Inf" and float(le) == bound
            ]
            assert rendered == [c]


# ---------------------------------------------------------------------
# Prometheus exposition round-trip (hypothesis)
# ---------------------------------------------------------------------
# Raw \r (or the other splitlines() separators) in a label value would
# break line framing — the renderer escapes only \\, ", and \n, per
# the exposition spec — so the generator stays off those code points.
label_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters="\r\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029",
    ),
    max_size=20,
)


class TestPrometheusRoundTrip:
    @given(
        counter_vals=st.dictionaries(
            label_text,
            st.floats(min_value=0, max_value=1e12, allow_nan=False),
            max_size=5,
        ),
        gauge_val=finite,
        observations=st.lists(st.floats(-1e6, 1e6), max_size=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_render_parse_round_trip(
        self, counter_vals, gauge_val, observations
    ):
        reg = MetricsRegistry()
        c = reg.counter(
            "rt_requests_total", "requests", label_names=("tenant",)
        )
        for tenant, v in counter_vals.items():
            c.inc(v, tenant=tenant)
        reg.gauge("rt_depth", "queue depth").set(gauge_val)
        h = reg.histogram("rt_latency_seconds", "latency")
        for v in observations:
            h.observe(v)

        doc = parse_prometheus(reg.render())
        assert doc["types"] == {
            "rt_requests_total": "counter",
            "rt_depth": "gauge",
            "rt_latency_seconds": "histogram",
        }
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in doc["samples"]
        }
        for tenant in counter_vals:
            got = samples[("rt_requests_total", (("tenant", tenant),))]
            assert got == c.value(tenant=tenant)
        assert samples[("rt_depth", ())] == gauge_val
        assert samples[("rt_latency_seconds_count", ())] == len(
            observations
        )
        assert samples[("rt_latency_seconds_sum", ())] == h.sum()
        inf_key = ("rt_latency_seconds_bucket", (("le", "+Inf"),))
        assert samples[inf_key] == len(observations)

    def test_render_registries_dedups_first_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("dup_total", "from a").inc(1)
        b.counter("dup_total", "from b").inc(7)
        b.counter("only_b_total", "b only").inc(2)
        doc = parse_prometheus(render_registries(a, b))
        samples = {name: value for name, _labels, value in doc["samples"]}
        assert samples == {"dup_total": 1, "only_b_total": 2}

    @pytest.mark.parametrize(
        "bad",
        [
            "not a sample line",
            'metric{unterminated="x} 1',
            "metric 1 2 3 extra",
            "metric notanumber",
        ],
    )
    def test_parser_is_strict(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus(bad + "\n")

    def test_parses_special_values(self):
        doc = parse_prometheus("m_bucket{le=\"+Inf\"} 3\nm2 -Inf\n")
        values = {n: v for n, _l, v in doc["samples"]}
        assert values["m_bucket"] == 3
        assert values["m2"] == -math.inf


# ---------------------------------------------------------------------
# Span-tree well-formedness under parallel_map
# ---------------------------------------------------------------------
def _traced_square(x: int) -> int:
    with trace.span("work.outer", "test", item=x):
        with trace.span("work.inner", "test"):
            return x * x


def _assert_well_formed(events: list[dict]) -> dict:
    """Unique ids, resolvable parents, children inside parents."""
    by_id: dict[str, dict] = {}
    for e in events:
        assert e["id"] not in by_id, f"duplicate span id {e['id']}"
        by_id[e["id"]] = e
    for e in events:
        parent_id = e.get("parent")
        if parent_id is None:
            continue
        assert parent_id in by_id, f"dangling parent {parent_id}"
        parent = by_id[parent_id]
        assert parent["ts"] <= e["ts"]
        # µs truncation of start/duration can shave the bounds by one
        # tick each; allow that much and no more.
        assert (
            e["ts"] + e["dur"] <= parent["ts"] + parent["dur"] + 2
        ), f"{e['name']} escapes its parent {parent['name']}"
    return by_id


class TestSpanTrees:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_parallel_map_trees(self, jobs):
        trace.enable(process_token=f"coord-j{jobs}")
        with trace.span("fanout", "runner", jobs=jobs):
            results = parallel_map(
                _traced_square, [1, 2, 3, 4], jobs=jobs
            )
        assert results == [1, 4, 9, 16]
        events = trace.drain()
        by_id = _assert_well_formed(events)

        (root,) = [e for e in events if e["name"] == "fanout"]
        outers = [e for e in events if e["name"] == "work.outer"]
        inners = [e for e in events if e["name"] == "work.inner"]
        assert len(outers) == len(inners) == 4
        # Every task span's ancestry terminates at the coordinator's
        # fanout span — jobs=1 directly, jobs=N via the shipped
        # worker envelopes.
        for e in outers + inners:
            cur = e
            while cur.get("parent"):
                cur = by_id[cur["parent"]]
            assert cur["id"] == root["id"]

    def test_chrome_export_round_trip(self, tmp_path):
        import json

        trace.enable(process_token="rt")
        with trace.span("outer", "test", k="v"):
            with trace.span("inner", "test"):
                pass
        events = trace.drain()
        path = tmp_path / "trace.json"
        assert trace.export_chrome(path, events) == 2
        doc = json.loads(path.read_text())
        trace.validate_trace_events(doc)
        assert trace.ingest_chrome(doc) == 2
        merged = trace.drain()
        assert sorted(e["id"] for e in merged) == sorted(
            e["id"] for e in events
        )
        assert _assert_well_formed(merged)


# ---------------------------------------------------------------------
# Request-id threading through service and router
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_program():
    return build_served_program(SPEC)


def _make_router(program, **kwargs) -> ShardRouter:
    shards = []
    for i in range(2):
        shard = LocalShard(
            f"shard{i}",
            policy=BatchPolicy(max_batch=8, max_wait_s=0.0, max_queue=64),
        )
        shard.install(program)
        shards.append(shard)
    kwargs.setdefault("fingerprints", {SPEC.name: program.fingerprint})
    return ShardRouter(shards, **kwargs)


class TestRequestIdThreading:
    def test_router_passes_id_end_to_end(self, served_program):
        router = _make_router(served_program)
        row = [0.5] * served_program.num_inputs

        async def go():
            async with router:
                doc = await router.submit(
                    SPEC.name, row, request_id="rid-42"
                )
                generated = await router.submit(SPEC.name, row)
            return doc, generated

        doc, generated = run(go())
        assert doc["status"] == "ok"
        assert doc["request_id"] == "rid-42"
        # No client id -> the service mints one and it still rides back.
        assert generated["status"] == "ok"
        assert generated["request_id"].startswith("req-")

    def test_header_wins_and_errors_carry_id(self, served_program):
        router = _make_router(served_program)
        row = [0.5] * served_program.num_inputs

        async def go():
            import json

            dispatch = router_dispatch(router)
            async with router:
                body = {
                    "program": SPEC.name,
                    "inputs": row,
                    "request_id": "body-id",
                }
                status, ok_doc = await dispatch(
                    "POST",
                    "/infer",
                    json.dumps(body).encode(),
                    {"x-repro-request-id": "header-id"},
                )
                _status, err_doc = await dispatch(
                    "POST",
                    "/infer",
                    json.dumps(
                        {
                            "program": "no_such_program",
                            "inputs": [1.0],
                            "request_id": "err-id",
                        }
                    ).encode(),
                )
            return status, ok_doc, err_doc

        status, ok_doc, err_doc = run(go())
        assert status == 200
        assert ok_doc["request_id"] == "header-id"
        assert err_doc["status"] != "ok"
        assert err_doc["request_id"] == "err-id"

    def test_router_metrics_parse(self, served_program):
        router = _make_router(served_program)
        row = [0.5] * served_program.num_inputs

        async def go():
            async with router:
                await router.submit(SPEC.name, row)
                return router.metrics_text()

        doc = parse_prometheus(run(go()))
        names = {name for name, _labels, _v in doc["samples"]}
        assert "repro_router_routed_total" in names
        assert "repro_router_shard_up" in names
