"""Banked register file with automatic write-address generation (§III-B).

Each bank tracks a valid bit per register; a priority encoder picks the
lowest *free* address for every incoming write (fig. 5(d)).  Reads do
not clear valid bits — the instruction's per-bank ``valid_rst`` bit
does, marking the last read of a value.

Following the reserve-at-issue semantics documented in
``repro.arch.isa``, a register goes through three states::

    FREE --reserve()--> RESERVED --commit()--> VALID --release()--> FREE

The compiler's address predictor (``repro.compiler.regalloc``) replays
exactly the reserve/release sequence, so its predictions are checked
against this model in tests cycle by cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import RegisterFileError
from .config import ArchConfig


class RegState(enum.Enum):
    FREE = 0
    RESERVED = 1
    VALID = 2


@dataclass
class _Register:
    state: RegState = RegState.FREE
    var: int = -1
    value: float = 0.0


class RegisterBank:
    """One single-read / single-write ported register bank."""

    def __init__(self, bank_id: int, size: int) -> None:
        self.bank_id = bank_id
        self.size = size
        self._regs = [_Register() for _ in range(size)]
        self._free_count = size
        #: Peak simultaneous occupancy (for fig. 10(c)/(d) style traces).
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    # Priority encoder + valid bits
    # ------------------------------------------------------------------
    def lowest_free(self) -> int:
        """Address the priority encoder would output right now.

        Raises:
            RegisterFileError: If the bank is full — the compiler's
                spill pass failed to keep occupancy within R.
        """
        for addr, reg in enumerate(self._regs):
            if reg.state is RegState.FREE:
                return addr
        raise RegisterFileError(
            f"bank {self.bank_id} overflow: all {self.size} registers busy"
        )

    def reserve(self, var: int) -> int:
        """Reserve the lowest free register for ``var``; returns addr."""
        addr = self.lowest_free()
        reg = self._regs[addr]
        reg.state = RegState.RESERVED
        reg.var = var
        self._free_count -= 1
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        return addr

    def commit(self, addr: int, var: int, value: float) -> None:
        """Land data into a previously reserved register."""
        reg = self._regs[addr]
        if reg.state is not RegState.RESERVED:
            raise RegisterFileError(
                f"bank {self.bank_id} addr {addr}: commit to "
                f"{reg.state.name} register"
            )
        if reg.var != var:
            raise RegisterFileError(
                f"bank {self.bank_id} addr {addr}: committing var {var} "
                f"into reservation for var {reg.var}"
            )
        reg.state = RegState.VALID
        reg.value = value

    def read(self, addr: int) -> tuple[int, float]:
        """Read (var, value); the register must hold valid data."""
        reg = self._regs[addr]
        if reg.state is not RegState.VALID:
            raise RegisterFileError(
                f"bank {self.bank_id} addr {addr}: read of "
                f"{reg.state.name} register (RAW hazard or compiler bug)"
            )
        return reg.var, reg.value

    def release(self, addr: int) -> None:
        """Apply ``valid_rst``: free the register after its last read."""
        reg = self._regs[addr]
        if reg.state is RegState.FREE:
            raise RegisterFileError(
                f"bank {self.bank_id} addr {addr}: double release"
            )
        reg.state = RegState.FREE
        reg.var = -1
        self._free_count += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Registers currently reserved or valid."""
        return self.size - self._free_count

    def addr_of(self, var: int) -> int:
        """Address currently holding ``var``.

        Linear scan — only used by assertions and tests; the simulator
        proper uses addresses resolved by the compiler.
        """
        for addr, reg in enumerate(self._regs):
            if reg.state is not RegState.FREE and reg.var == var:
                return addr
        raise RegisterFileError(
            f"bank {self.bank_id}: var {var} not resident"
        )

    def resident_vars(self) -> list[int]:
        return [
            reg.var for reg in self._regs if reg.state is not RegState.FREE
        ]


class RegisterFile:
    """The B-bank register file."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.banks = [
            RegisterBank(b, config.regs_per_bank)
            for b in range(config.banks)
        ]

    def __getitem__(self, bank: int) -> RegisterBank:
        return self.banks[bank]

    def occupancy_profile(self) -> list[int]:
        """Current occupancy of every bank (fig. 10(c)/(d) snapshots)."""
        return [bank.occupancy for bank in self.banks]

    def total_occupancy(self) -> int:
        return sum(bank.occupancy for bank in self.banks)
