"""Bench + reproduction of the §III-B / §IV-E footprint claims."""

from repro.experiments import footprint

from conftest import publish


def test_footprint_savings(benchmark):
    result = benchmark.pedantic(footprint.run, rounds=1, iterations=1)
    publish("footprint", footprint.render(result))
    # ~30% program-size saving from automatic write addressing.
    assert 0.15 < result.mean_auto_write_saving() < 0.45
    # Total (instructions + data) beats the CSR representation.
    assert result.mean_vs_csr_saving() > 0.25
