"""Verifying reference simulator: executes a Program cycle by cycle.

This is the *slow, fully-checked* half of the two-phase execution
engine.  It replaces the paper's SystemVerilog RTL + VCS simulation
(see the substitution table in DESIGN.md), executing the instruction
stream scalar-ly, one input vector at a time, re-verifying the
compiler's hazard/interconnect/address discipline on every run.  Use
it to validate compilations and debug the stack.

For throughput work, use the plan-based fast path instead: lower the
program once with :func:`repro.sim.plan.lower_program` (which runs the
exact same verification, exactly once) and execute batches with
:class:`repro.sim.batch.BatchSimulator` — bitwise-identical outputs at
a fraction of the per-row cost.

The scalar semantics implemented here are the contract the compiler
assumed:

* one instruction issues per cycle (dense packing + shifter guarantee
  supply, §III-E);
* register banks implement the automatic write policy — reservations
  at issue via a priority encoder, data landing when the producer
  retires, frees via ``valid_rst`` (§III-B);
* exec results traverse D+1 pipeline stages; copies and loads have
  single-cycle latency; reading a register whose data has not landed
  raises :class:`HazardError` — the simulator *verifies* the
  compiler's pipeline discipline rather than interlocking;
* activity is counted for the energy model (bank reads/writes,
  arithmetic PE firings, crossbar traversals, memory accesses,
  instruction bits fetched).

Functional correctness is established by comparing every stored output
(and optionally every intermediate value) against the golden model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..arch import (
    CopyInstr,
    DataMemory,
    ExecInstr,
    Instruction,
    InstructionMemoryStats,
    Interconnect,
    LoadInstr,
    NopInstr,
    PEOp,
    Program,
    RegisterFile,
    StoreInstr,
    evaluate_trees,
    instruction_widths,
)
from ..errors import HazardError, SimulationError


@dataclass
class ActivityCounters:
    """Per-event activity totals feeding the energy model."""

    cycles: int = 0
    instructions: int = 0
    exec_count: int = 0
    pe_ops: int = 0  # arithmetic firings
    pe_passes: int = 0
    bank_reads: int = 0
    bank_writes: int = 0
    crossbar_transfers: int = 0  # input-crossbar word movements
    dmem_reads: int = 0
    dmem_writes: int = 0
    instr_bits_fetched: int = 0
    nops: int = 0

    def ops_per_cycle(self) -> float:
        return self.pe_ops / self.cycles if self.cycles else 0.0

    def scaled(self, batch: int) -> "ActivityCounters":
        """Totals for ``batch`` back-to-back runs of the same program.

        Execution is fully static, so every event count — cycles
        included — scales exactly linearly with the batch size.
        """
        if batch < 1:
            raise SimulationError(f"batch must be >= 1, got {batch}")
        return ActivityCounters(
            **{
                f.name: getattr(self, f.name) * batch
                for f in dataclasses.fields(self)
            }
        )


@dataclass
class SimResult:
    """Simulation outcome.

    Attributes:
        values: Value of every variable (binarized node) the program
            materialized.
        outputs: Values stored to data memory, keyed by variable.
        counters: Activity totals for performance/energy models.
        peak_occupancy: Per-bank peak register usage.
    """

    values: dict[int, float]
    outputs: dict[int, float]
    counters: ActivityCounters
    peak_occupancy: list[int]

    @property
    def cycles(self) -> int:
        return self.counters.cycles


class Simulator:
    """Executes compiled programs on the architectural model."""

    def __init__(self, program: Program, interconnect: Interconnect | None = None):
        self.program = program
        self.config = program.config
        self.interconnect = interconnect or Interconnect(self.config)
        self._widths = instruction_widths(self.config, self.interconnect)

    def lower(self, check_addresses: list[dict[int, int]] | None = None):
        """Lower to an :class:`~repro.sim.plan.ExecutionPlan`.

        Runs this simulator's full verification once and returns the
        array-form plan for the vectorized batch engine.
        """
        from .plan import lower_program

        return lower_program(
            self.program,
            interconnect=self.interconnect,
            check_addresses=check_addresses,
        )

    def run(
        self,
        inputs: list[float],
        reference: dict[int, float] | None = None,
        check_addresses: list[dict[int, int]] | None = None,
    ) -> SimResult:
        """Execute the program on an input vector.

        Args:
            inputs: External inputs indexed by original input slot.
            reference: Optional ``var -> value`` golden values; every
                commit is checked against it when provided.
            check_addresses: Optional per-instruction read-address
                predictions from the compiler; the simulator verifies
                its priority encoder agrees.

        Raises:
            HazardError: Read of in-flight data (compiler failed to
                respect the pipeline depth).
            SimulationError: Any architectural misuse or a mismatch
                against ``reference``.
        """
        cfg = self.config
        program = self.program
        regfile = RegisterFile(cfg)
        dmem = DataMemory(cfg)
        imem = InstructionMemoryStats(self._widths.il)
        counters = ActivityCounters()

        self._populate_inputs(dmem, inputs)

        # Pending commits: (commit_cycle, bank, addr, var, value).
        pending: list[tuple[int, int, int, int, float]] = []
        values: dict[int, float] = {}
        outputs: dict[int, float] = {}

        for cycle, instr in enumerate(program.instructions):
            imem.append(self._widths.of(instr.mnemonic))
            counters.instructions += 1
            # Retire datapath/copy/load results whose time has come.
            still: list[tuple[int, int, int, int, float]] = []
            for item in pending:
                if item[0] <= cycle:
                    _, bank, addr, var, value = item
                    regfile[bank].commit(addr, var, value)
                    if reference is not None and var in reference:
                        self._check(var, value, reference[var])
                    values[var] = value
                else:
                    still.append(item)
            pending = still

            if isinstance(instr, NopInstr):
                counters.nops += 1
                continue
            if isinstance(instr, ExecInstr):
                self._exec(
                    instr, cycle, regfile, pending, counters,
                    check_addresses[cycle] if check_addresses else None,
                )
            elif isinstance(instr, CopyInstr):
                self._copy(instr, cycle, regfile, pending, counters)
            elif isinstance(instr, LoadInstr):
                self._load(instr, cycle, regfile, dmem, pending, counters)
            elif isinstance(instr, StoreInstr):
                self._store(instr, regfile, dmem, counters, outputs)
            else:  # pragma: no cover - exhaustive
                raise SimulationError(f"unknown instruction {instr!r}")

        # Drain the pipeline.
        for commit_cycle, bank, addr, var, value in sorted(pending):
            regfile[bank].commit(addr, var, value)
            if reference is not None and var in reference:
                self._check(var, value, reference[var])
            values[var] = value

        counters.cycles = len(program.instructions) + cfg.pipeline_stages
        counters.instr_bits_fetched = imem.fetches * self._widths.il
        return SimResult(
            values=values,
            outputs=outputs,
            counters=counters,
            peak_occupancy=[b.peak_occupancy for b in regfile.banks],
        )

    # ------------------------------------------------------------------
    def _populate_inputs(self, dmem: DataMemory, inputs: list[float]) -> None:
        program = self.program
        for var, (row, bank) in program.input_layout.items():
            slot = program.input_slots.get(var)
            if slot is None:
                raise SimulationError(
                    f"input var {var} has no external slot mapping"
                )
            if slot >= len(inputs):
                raise SimulationError(
                    f"input vector too short: need slot {slot}, "
                    f"got {len(inputs)} values"
                )
            dmem.write_lane(row, bank, var, float(inputs[slot]))

    def _read(
        self,
        regfile: RegisterFile,
        bank: int,
        var: int,
        rst: bool,
        counters: ActivityCounters,
        predicted_addr: int | None = None,
    ) -> float:
        try:
            addr = regfile[bank].addr_of(var)
        except Exception as exc:
            raise HazardError(
                f"read of var {var} from bank {bank}: {exc}"
            ) from exc
        if predicted_addr is not None and predicted_addr != addr:
            raise SimulationError(
                f"compiler predicted addr {predicted_addr} for var {var} "
                f"in bank {bank}, hardware chose {addr}"
            )
        got_var, value = regfile[bank].read(addr)
        if got_var != var:
            raise SimulationError(
                f"bank {bank} addr {addr} holds var {got_var}, "
                f"expected {var}"
            )
        counters.bank_reads += 1
        if rst:
            regfile[bank].release(addr)
        return value

    def _exec(
        self,
        instr: ExecInstr,
        cycle: int,
        regfile: RegisterFile,
        pending: list,
        counters: ActivityCounters,
        predicted: dict[int, int] | None,
    ) -> None:
        cfg = self.config
        counters.exec_count += 1
        bank_values: dict[int, float] = {}
        for bank, var in instr.bank_reads:
            bank_values[bank] = self._read(
                regfile, bank, var, bank in instr.valid_rst, counters,
                predicted.get(bank) if predicted else None,
            )
        port_values: list[float | None] = [None] * cfg.banks
        for port, src in enumerate(instr.port_source):
            if src is not None:
                if src not in bank_values:
                    raise SimulationError(
                        f"port {port} sources bank {src} which is not read"
                    )
                port_values[port] = bank_values[src]
                counters.crossbar_transfers += 1
        pe_out = evaluate_trees(cfg, port_values, instr.pe_ops)
        for op in instr.pe_ops:
            if op.is_arithmetic:
                counters.pe_ops += 1
            elif op is PEOp.PASS_A or op is PEOp.PASS_B:
                counters.pe_passes += 1
        for w in instr.writes:
            if not self.interconnect.can_write(w.pe, w.bank):
                raise SimulationError(
                    f"PE {w.pe} cannot write bank {w.bank} "
                    "(output interconnect violation)"
                )
            value = pe_out[w.pe]
            if value is None:
                raise SimulationError(
                    f"write from idle PE {w.pe} (var {w.var})"
                )
            addr = regfile[w.bank].reserve(w.var)
            pending.append(
                (cycle + cfg.pipeline_stages, w.bank, addr, w.var, value)
            )
            counters.bank_writes += 1

    def _copy(
        self,
        instr: CopyInstr,
        cycle: int,
        regfile: RegisterFile,
        pending: list,
        counters: ActivityCounters,
    ) -> None:
        srcs = [m.src_bank for m in instr.moves]
        dsts = [m.dst_bank for m in instr.moves]
        if len(set(srcs)) != len(srcs) or len(set(dsts)) != len(dsts):
            raise SimulationError("copy violates 1R/1W bank ports")
        for m in instr.moves:
            value = self._read(
                regfile, m.src_bank, m.var, m.free_source, counters
            )
            addr = regfile[m.dst_bank].reserve(m.var)
            pending.append((cycle + 1, m.dst_bank, addr, m.var, value))
            counters.bank_writes += 1
            counters.crossbar_transfers += 1

    def _load(
        self,
        instr: LoadInstr,
        cycle: int,
        regfile: RegisterFile,
        dmem: DataMemory,
        pending: list,
        counters: ActivityCounters,
    ) -> None:
        lanes = dmem.load_row(instr.row)
        counters.dmem_reads += 1
        for bank, var in instr.dests:
            tag, value = lanes[bank]
            if tag != var:
                raise SimulationError(
                    f"load row {instr.row} lane {bank}: memory holds var "
                    f"{tag}, program expects {var}"
                )
            addr = regfile[bank].reserve(var)
            pending.append((cycle + 1, bank, addr, var, value))
            counters.bank_writes += 1

    def _store(
        self,
        instr: StoreInstr,
        regfile: RegisterFile,
        dmem: DataMemory,
        counters: ActivityCounters,
        outputs: dict[int, float],
    ) -> None:
        lanes: list[tuple[int, int, float]] = []
        for slot in instr.slots:
            value = self._read(
                regfile, slot.bank, slot.var, slot.free_source, counters
            )
            lanes.append((slot.bank, slot.var, value))
        dmem.store_lanes(instr.row, lanes)
        counters.dmem_writes += 1
        out_rows = self._output_rows()
        if instr.row in out_rows:
            for _, var, value in lanes:
                outputs[var] = value

    def _output_rows(self) -> set[int]:
        if not hasattr(self, "_out_rows_cache"):
            self._out_rows_cache = {
                row for row, _ in self.program.output_layout.values()
            }
        return self._out_rows_cache

    def _check(self, var: int, value: float, expected: float) -> None:
        if not np.isclose(value, expected, rtol=1e-9, atol=1e-12):
            raise SimulationError(
                f"var {var}: simulated {value!r} != reference {expected!r}"
            )


def run_program(
    program: Program,
    inputs: list[float],
    reference: dict[int, float] | None = None,
    check_addresses: list[dict[int, int]] | None = None,
) -> SimResult:
    """Convenience wrapper: build a Simulator and run once."""
    return Simulator(program).run(
        inputs, reference=reference, check_addresses=check_addresses
    )
