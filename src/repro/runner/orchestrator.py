"""Process-pool fan-out with deterministic merge order.

:func:`parallel_map` is the one primitive every sweep and figure
driver is built on: it runs ``fn`` over ``items`` on ``jobs`` worker
processes and returns results **in item order**, so a parallel run is
bit-identical to the serial one regardless of completion order.

Design points:

* ``jobs=1`` (the default) runs inline — no pool, no pickling — so
  library callers and most tests pay nothing for the capability;
* workers are initialized with the parent's cache configuration
  (:func:`repro.runner.cache.cache_env`), so all workers share one
  content-addressed artifact store on disk;
* progress is reported through a callback (or ``progress=True`` for a
  stderr ticker) as completions arrive, while the returned list stays
  deterministically ordered;
* a worker exception cancels the remaining tasks and re-raises in the
  parent — partial results are never silently merged;
* a worker *death* (SIGKILL, OOM-kill — surfacing as
  ``BrokenProcessPool``) does not abort the map: completed results are
  kept, the pool is restarted once, and only the lost tasks are
  re-run.  A second death raises with the in-flight item indices named
  so the poison task can be found.  Campaigns needing stronger
  guarantees (durable checkpoints, retry budgets, quarantine) use
  :mod:`repro.runner.queue` instead.

``fn`` and every item must be picklable (module-level functions and
plain data) when ``jobs > 1``; that is the usual multiprocessing
contract and every driver in :mod:`repro.experiments` follows it.
"""

from __future__ import annotations

import os
import sys
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from ..obs import trace
from .cache import cache_env, configure_cache

#: Distinguishes "no result yet" from a legitimate ``None`` result when
#: deciding which tasks were lost to a dead worker.
_UNSET = object()

def default_jobs() -> int:
    """Fallback worker count: ``REPRO_JOBS`` env, else 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _init_worker(env: dict[str, str]) -> None:
    """Pool initializer: adopt the parent's cache configuration."""
    for name, value in env.items():
        if value:
            os.environ[name] = value
        else:
            os.environ.pop(name, None)
    directory = env.get("REPRO_CACHE_DIR") or None
    configure_cache(directory, enabled=not env.get("REPRO_NO_CACHE"))


def _stderr_progress(desc: str) -> Callable[[int, int], None]:
    def report(done: int, total: int) -> None:
        end = "\n" if done == total else ""
        print(f"\r{desc}: {done}/{total}", end=end, file=sys.stderr)

    return report


def parallel_map(
    fn: Callable,
    items: Iterable,
    jobs: int | None = None,
    progress: bool | Callable[[int, int], None] = False,
    desc: str = "tasks",
) -> list:
    """Map ``fn`` over ``items`` on ``jobs`` processes, order-preserving.

    Args:
        fn: Module-level callable applied to each item.
        items: Task inputs (materialized up front).
        jobs: Worker processes; ``None`` uses :func:`default_jobs`,
            ``1`` runs inline in this process.
        progress: ``True`` for a stderr ticker, or a callable invoked
            as ``progress(done, total)`` after each completion.
        desc: Label for the stderr ticker.

    Returns:
        ``[fn(item) for item in items]`` — identical to the serial
        comprehension, whatever the completion order.
    """
    tasks = list(items)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    report: Callable[[int, int], None] | None
    if progress is True:
        report = _stderr_progress(desc)
    elif callable(progress):
        report = progress
    else:
        report = None

    total = len(tasks)
    if jobs == 1 or total <= 1:
        results = []
        for i, item in enumerate(tasks):
            results.append(fn(item))
            if report:
                report(i + 1, total)
        return results

    results: list = [_UNSET] * total
    env = cache_env()
    if trace.is_on():
        # Ship span context to the workers: each task runs under a
        # span parented to the coordinator's current span, and the
        # worker's buffered spans ride back inside the result
        # envelope (unwrapped below), so jobs=N merges into the same
        # parent-linked tree jobs=1 records directly.
        fn = trace.task_wrapper(fn, desc)
    restarts_left = 1  # one automatic pool restart on worker death
    while True:
        remaining = [i for i in range(total) if results[i] is _UNSET]
        if not remaining:
            return results
        done = total - len(remaining)
        broken: BaseException | None = None
        pending: set = set()
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(remaining)),
            initializer=_init_worker,
            initargs=(env,),
        ) as pool:
            try:
                futures = {
                    pool.submit(fn, tasks[i]): i for i in remaining
                }
                pending = set(futures)
                # A dead worker resolves every pending future with
                # BrokenProcessPool, so this loop still drains: note
                # the breakage but keep any results that did land.
                while pending:
                    finished, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    for fut in finished:
                        try:
                            results[futures[fut]] = trace.merge_task_result(
                                fut.result()
                            )
                        except BrokenProcessPool as exc:
                            broken = exc
                            continue
                        done += 1
                        if report:
                            report(done, total)
            except BrokenProcessPool as exc:
                broken = exc
            except BaseException:
                for fut in pending:
                    fut.cancel()
                raise
        if broken is None:
            continue
        lost = [i for i in range(total) if results[i] is _UNSET]
        if restarts_left <= 0:
            raise RuntimeError(
                f"worker process died again after a pool restart; "
                f"{len(lost)} task(s) unfinished — in-flight candidates "
                f"(item indices): {lost[:8]}"
                f"{', …' if len(lost) > 8 else ''}; first lost item: "
                f"{tasks[lost[0]]!r:.200}"
            ) from broken
        restarts_left -= 1


def starmap_jobs(
    fn: Callable,
    arg_tuples: Sequence[tuple],
    jobs: int | None = None,
    progress: bool | Callable[[int, int], None] = False,
    desc: str = "tasks",
) -> list:
    """:func:`parallel_map` for functions taking positional args."""
    return parallel_map(
        _Star(fn), arg_tuples, jobs=jobs, progress=progress, desc=desc
    )


class _Star:
    """Picklable ``lambda args: fn(*args)``."""

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, args: tuple):
        return self.fn(*args)
