"""Scale compensation for baseline models on shrunk workloads.

The benchmark suite is regenerated at a fraction of the published
workload sizes (Table I runs 8k-79k nodes; the default suite uses
``scale`` of that) so the whole evaluation executes in minutes under
CPython.  Shrinking a workload does *not* shrink a CPU barrier or a
GPU kernel launch, so fixed per-level overheads would dominate the
scaled workloads far beyond what the paper measured at full size.

To preserve each platform's *overhead-to-work ratio* — the quantity
that determines the published speedups — fixed overheads are scaled
down with the workload:

* work scales with ``s`` (node count) while DAG depth (and hence the
  number of barrier/launch events) scales with roughly ``s^(1/3)`` in
  our generators, so multiplying a per-level overhead by ``s^(2/3)``
  keeps its share of total time invariant;
* GPU launches additionally amortize over per-level *width* (lanes
  fill at full size but idle at small widths), which empirically makes
  ``s^1`` the invariant exponent for the launch term.

DPU-v1 needs no compensation: like DPU-v2 it is a 300MHz device whose
per-level cost is a few cycles, already negligible at any scale.
"""

from __future__ import annotations

import dataclasses

from .cpu import CPUModel
from .dpu_v1 import DPUv1Model
from .gpu import GPUModel


def scaled_cpu(scale: float, base: CPUModel | None = None) -> CPUModel:
    """CPU model with barrier cost compensated for workload ``scale``."""
    model = base or CPUModel()
    if scale >= 1.0:
        return model
    return dataclasses.replace(
        model, barrier_seconds=model.barrier_seconds * scale ** (2 / 3)
    )


def scaled_gpu(scale: float, base: GPUModel | None = None) -> GPUModel:
    """GPU model with launch cost compensated for workload ``scale``."""
    model = base or GPUModel()
    if scale >= 1.0:
        return model
    return dataclasses.replace(
        model, launch_seconds=model.launch_seconds * scale
    )


def scaled_models(
    scale: float,
) -> tuple[CPUModel, GPUModel, DPUv1Model]:
    """(CPU, GPU, DPU-v1) models appropriate for a suite at ``scale``."""
    return scaled_cpu(scale), scaled_gpu(scale), DPUv1Model()
