"""Phase 3 of the execution engine: fused super-op plans.

The step tape of an :class:`~repro.sim.plan.ExecutionPlan` is faithful
to the machine — one :class:`~repro.sim.plan.MoveStep` or
:class:`~repro.sim.plan.ComputeStep` per lowered event — but that
fidelity costs one Python-dispatched numpy gather/compute/scatter per
step, plus a full register-file/data-memory/scratch state image per
batch row.  At batch 256 the interpreter overhead, the fancy-index
intermediates and the state traffic dominate the sweep.  This module
lowers the tape one step further into a :class:`FusedPlan`, built on
three observations:

1. **Moves are renames.**  The tape's data movement (copies, loads,
   stores, exec write-backs, PASS_A/PASS_B bypasses) never computes
   anything, so under a single-assignment renaming every moved value
   is just a new name for an existing value.  Fusion replays the tape
   symbolically, tracking the *value id* currently held by every state
   cell; moves update the tracking table and vanish from execution.

2. **Same-opcode ops of one dependence level fuse.**  With moves gone,
   only true RAW dependences remain (every op defines a fresh id, so
   WAW/WAR hazards cannot exist).  Each arithmetic op's level is
   ``1 + max(level of operands)``; all adds of one level become a
   single vectorized ``np.add``, all muls one ``np.multiply`` — a
   *super-op kernel*.  A plan with thousands of tape steps collapses
   to roughly ``2 x depth`` kernels.

3. **The machine state can be left behind.**  The fused engine never
   writes an original state cell: results land in fresh value cells
   and the only original cells ever *read* are the externally
   scattered inputs (anything else reads the zero initialization,
   which gets one pinned zero cell).  The fused state vector is
   therefore just ``[used original cells | one value per op]`` — for
   real workloads a fraction of the register-file + data-memory +
   scratch image the step engine carries per batch row — and value
   ids are permuted level-major so every kernel *writes a basic
   slice* and operands frequently *read* one.

Execution runs level by level: the level's non-contiguous operands are
collected by **one** fancy gather into a scratch block, then each
kernel is one ufunc call over *flat 1-D contiguous views* (the state
is C-contiguous, so cell range ``[lo, hi)`` is flat range
``[lo*B, hi*B)`` — the cheapest code path numpy has).

Because every slice endpoint is a pure function of (plan, batch
width), the whole sweep can additionally be **bound** once per batch
width (:func:`bind_sweep`): the state buffer, the per-level gather
blocks and every operand/result view are constructed up front and
reused across runs, so the per-run hot path degenerates to raw ufunc
dispatches — no allocation, no slice construction, no index
arithmetic.  Rebinding is safe because the fused state is
single-assignment: every cell is written before it is read on each
run (inputs by the caller's scatter, op cells by their kernel), so
stale values from the previous batch are never observed.

The optional **codegen backend** (:func:`codegen_source` /
:func:`compiled_sweep`) emits that bound sweep as straight-line Python
source: a generated ``_bind(state)`` factory hoists all views into
closure cells and returns a ``_sweep()`` of pure pre-bound ufunc
calls, ``exec``-compiled once per plan and memoized process-wide by
the plan's content :attr:`~FusedPlan.fingerprint` (the artifact cache
persists the source across processes; see
:func:`repro.runner.cache.cached_codegen_source`).

Everything here is bitwise-exact: kernels perform the same IEEE-double
adds and muls, only regrouping *independent* lanes, so fused outputs
are asserted bit-identical to the step engine's by the differential
fuzzer and the property-based suite.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..obs import trace
from ..obs.metrics import get_registry
from .functional import ActivityCounters
from .plan import ComputeStep, ExecutionPlan, MoveStep, contiguous_slice

#: Kernel opcodes, aligned with :data:`repro.compiler.arrays.OP_CODES`.
FUSED_ADD = 1
FUSED_MUL = 2

#: Operand source tags: the fused state vector / the level's gather block.
SRC_STATE = 0
SRC_GATHER = 1

_UFUNCS = {FUSED_ADD: np.add, FUSED_MUL: np.multiply}
_OP_NAMES = {FUSED_ADD: "add", FUSED_MUL: "mul"}

_ID = np.int64


@dataclass(frozen=True)
class FusedKernel:
    """One super-op: every same-opcode op of one dependence level.

    Attributes:
        opcode: :data:`FUSED_ADD` or :data:`FUSED_MUL`.
        level: Dependence level (1-based).
        out_start / out_stop: The kernel writes fused state cells
            ``[out_start, out_stop)`` — always a basic slice.
        a_src / a_start / a_stop: First operand: cells ``[start, stop)``
            of the fused state (:data:`SRC_STATE`, a contiguous run of
            value ids) or rows ``[start, stop)`` of the level's gather
            block (:data:`SRC_GATHER`).
        b_src / b_start / b_stop: Second operand, same encoding.
    """

    opcode: int
    level: int
    out_start: int
    out_stop: int
    a_src: int
    a_start: int
    a_stop: int
    b_src: int
    b_start: int
    b_stop: int

    @property
    def width(self) -> int:
        return self.out_stop - self.out_start


@dataclass(frozen=True)
class FusedLevel:
    """One dependence level: an optional merged operand gather plus
    the level's kernels (at most one per opcode)."""

    gather: np.ndarray | None
    kernels: tuple[FusedKernel, ...]


@dataclass(frozen=True)
class FusedPlan:
    """An :class:`~repro.sim.plan.ExecutionPlan` fused into super-ops.

    Attributes:
        config / source_name / num_instructions / num_inputs: Carried
            over from the source plan (same program identity).
        state_size: Cells of the fused per-row state: the used
            original cells followed by one cell per arithmetic op
            (single-assignment value space, level-major).
        num_ops: Fused arithmetic ops (= value cells appended).
        base_cells: Original plan cell ids backing fused cells
            ``[0, len(base_cells))``, ascending — kept for tests and
            debugging; execution never consults it.
        input_pos / input_slots: Parallel arrays scattering column
            ``input_slots[i]`` of the input matrix into fused cell
            ``input_pos[i]`` (same slot order as the source plan).
        zero_pos: Fused cells that must read as ``0.0`` (original
            zero-initialized cells that are read but never written and
            never scattered; empty for verified programs).
        levels: Execution schedule, ascending by level.
        output_vars / output_cells: Parallel output arrays; cells are
            fused value ids.
        counters / peak_occupancy: The source plan's analytic activity
            model — fusion changes host execution, not the machine
            being modeled, so they are carried over unchanged.
        fingerprint: Content digest of the fused form; keys the
            codegen artifact cache.
    """

    config: object
    source_name: str
    num_instructions: int
    num_inputs: int
    state_size: int
    num_ops: int
    base_cells: np.ndarray
    input_pos: np.ndarray
    input_slots: np.ndarray
    zero_pos: np.ndarray
    levels: tuple[FusedLevel, ...]
    output_vars: tuple[int, ...]
    output_cells: np.ndarray
    counters: ActivityCounters
    peak_occupancy: list[int]
    fingerprint: str

    @property
    def cycles_per_row(self) -> int:
        """Device cycles one batch row costs (identical to the source
        plan — fusion is a host-side transformation)."""
        return self.counters.cycles

    def scaled_counters(self, batch: int) -> ActivityCounters:
        """Activity totals for a batch of ``batch`` rows."""
        return self.counters.scaled(batch)

    @property
    def kernels(self) -> tuple[FusedKernel, ...]:
        """All kernels in execution order (level-major)."""
        return tuple(k for lv in self.levels for k in lv.kernels)

    @property
    def num_levels(self) -> int:
        """Dependence depth of the fused op graph."""
        return len(self.levels)

    def make_state(self, batch: int) -> np.ndarray:
        """Fresh ``(state_size, batch)`` state, zero cells pinned.

        Deliberately *not* zero-filled: every other cell is written
        before it is read (inputs by the caller's scatter, op cells by
        their defining kernel — the level order guarantees it).
        """
        state = np.empty((self.state_size, batch), dtype=np.float64)
        if self.zero_pos.size:
            state[self.zero_pos] = 0.0
        return state


def estimated_fused_cells(plan: ExecutionPlan) -> int:
    """Fused state size ``fuse_plan(plan)`` would produce (within the
    handful of zero/passthrough cells), without fusing — cheap enough
    to drive the ``auto`` engine choice."""
    ops = sum(
        step.add_out.size + step.mul_out.size
        for step in plan.steps
        if type(step) is ComputeStep
    )
    return int(plan.input_cells.size) + ops


def fuse_plan(plan: ExecutionPlan) -> FusedPlan:
    """Fuse a verified plan into level-grouped super-op kernels.

    Pure lowering: no hazard or interconnect checks happen here (the
    source plan already carries them), and no data is touched — the
    tape is replayed over value *ids* only.
    """
    with trace.span(
        "plan.fuse",
        "engine",
        workload=plan.source_name,
        steps=len(plan.steps),
    ):
        return _fuse_plan(plan)


def _fuse_plan(plan: ExecutionPlan) -> FusedPlan:
    base = plan.state_size
    n_ops = 0
    for step in plan.steps:
        if type(step) is ComputeStep:
            n_ops += step.add_out.size + step.mul_out.size

    # Pass 1 — single-assignment renaming.  version[cell] is the value
    # id the cell currently holds; ids < base are the original cells'
    # initial values (inputs scatter into some of them, the rest read
    # the zero initialization), ids >= base are arithmetic results in
    # emission order.  Moves and PASS bypasses only permute the table;
    # each add/mul mints a fresh id at level 1 + max(operand levels).
    version = np.arange(base, dtype=_ID)
    def_level = np.zeros(base + n_ops, dtype=np.int32)
    kind = np.empty(n_ops, dtype=np.int8)
    lvl = np.empty(n_ops, dtype=np.int32)
    a_ids = np.empty(n_ops, dtype=_ID)
    b_ids = np.empty(n_ops, dtype=_ID)
    cursor = 0
    for step in plan.steps:
        if type(step) is MoveStep:
            version[step.dst] = version[step.src]
            continue
        # All groups of one ComputeStep read pre-step state (a layer
        # never feeds itself), so snapshot operand ids before writing.
        mov_src_v = version[step.mov_src]
        groups = []
        for code, out, op_a, op_b in (
            (FUSED_ADD, step.add_out, step.add_a, step.add_b),
            (FUSED_MUL, step.mul_out, step.mul_a, step.mul_b),
        ):
            if out.size:
                groups.append((code, out, version[op_a], version[op_b]))
        if step.mov_out.size:
            version[step.mov_out] = mov_src_v
        for code, out, av, bv in groups:
            k = out.size
            ids = np.arange(base + cursor, base + cursor + k, dtype=_ID)
            levels = np.maximum(def_level[av], def_level[bv]) + 1
            def_level[ids] = levels
            kind[cursor : cursor + k] = code
            lvl[cursor : cursor + k] = levels
            a_ids[cursor : cursor + k] = av
            b_ids[cursor : cursor + k] = bv
            version[out] = ids
            cursor += k
    if cursor != n_ops:  # pragma: no cover - internal invariant
        raise SimulationError(
            f"fusion op count drifted: emitted {cursor}, counted {n_ops}"
        )

    out_ids = version[plan.output_cells]

    # Pass 2 — compact the value space.  Original cells survive only
    # if an op or an output actually reads their *initial* value
    # (input cells are always kept so the input scatter stays total);
    # they occupy the fused prefix in ascending original order.  Op
    # ids follow, permuted level-major (opcode-minor, emission-order
    # stable) so every kernel's results form one contiguous range.
    used_mask = np.zeros(base, dtype=bool)
    used_mask[plan.input_cells] = True
    for ids in (a_ids, b_ids, out_ids):
        below = ids[ids < base]
        used_mask[below.astype(np.intp)] = True
    base_cells = np.flatnonzero(used_mask).astype(_ID)
    n_base = int(base_cells.size)
    base_pos = np.full(base, -1, dtype=_ID)
    base_pos[base_cells] = np.arange(n_base, dtype=_ID)

    order = np.lexsort((kind, lvl))
    rank = np.empty(n_ops, dtype=_ID)
    rank[order] = np.arange(n_ops, dtype=_ID)
    id_map = np.concatenate([base_pos, n_base + rank])
    a_new = id_map[a_ids[order]]
    b_new = id_map[b_ids[order]]
    kind_s = kind[order]
    lvl_s = lvl[order]

    input_pos = base_pos[plan.input_cells]
    scattered = np.zeros(n_base, dtype=bool)
    scattered[input_pos.astype(np.intp)] = True
    zero_pos = np.flatnonzero(~scattered).astype(_ID)

    levels_out: list[FusedLevel] = []
    if n_ops:
        level_breaks = np.flatnonzero(np.diff(lvl_s) != 0) + 1
        level_bounds = np.concatenate(([0], level_breaks, [n_ops]))
        for li in range(level_bounds.size - 1):
            ls, le = int(level_bounds[li]), int(level_bounds[li + 1])
            kernels: list[FusedKernel] = []
            gather_parts: list[np.ndarray] = []
            gathered = 0

            def operand(ids: np.ndarray) -> tuple[int, int, int]:
                nonlocal gathered
                sl = contiguous_slice(ids)
                if sl is not None:
                    return (SRC_STATE, sl[0], sl[1])
                gather_parts.append(ids)
                start = gathered
                gathered += int(ids.size)
                return (SRC_GATHER, start, gathered)

            seg_breaks = (
                np.flatnonzero(np.diff(kind_s[ls:le]) != 0) + 1 + ls
            )
            seg_bounds = np.concatenate(([ls], seg_breaks, [le]))
            for si in range(seg_bounds.size - 1):
                s, e = int(seg_bounds[si]), int(seg_bounds[si + 1])
                a_ref = operand(np.ascontiguousarray(a_new[s:e]))
                b_ref = operand(np.ascontiguousarray(b_new[s:e]))
                kernels.append(
                    FusedKernel(
                        opcode=int(kind_s[s]),
                        level=int(lvl_s[s]),
                        out_start=n_base + s,
                        out_stop=n_base + e,
                        a_src=a_ref[0],
                        a_start=a_ref[1],
                        a_stop=a_ref[2],
                        b_src=b_ref[0],
                        b_start=b_ref[1],
                        b_stop=b_ref[2],
                    )
                )
            gather = (
                np.ascontiguousarray(np.concatenate(gather_parts))
                if gather_parts
                else None
            )
            levels_out.append(FusedLevel(gather, tuple(kernels)))

    output_cells = id_map[out_ids]
    fingerprint = _fused_fingerprint(
        n_base + n_ops,
        input_pos,
        plan.input_slots,
        zero_pos,
        output_cells,
        levels_out,
    )
    return FusedPlan(
        config=plan.config,
        source_name=plan.source_name,
        num_instructions=plan.num_instructions,
        num_inputs=plan.num_inputs,
        state_size=n_base + n_ops,
        num_ops=n_ops,
        base_cells=base_cells,
        input_pos=input_pos,
        input_slots=plan.input_slots,
        zero_pos=zero_pos,
        levels=tuple(levels_out),
        output_vars=plan.output_vars,
        output_cells=output_cells,
        counters=plan.counters,
        peak_occupancy=list(plan.peak_occupancy),
        fingerprint=fingerprint,
    )


def _fused_fingerprint(
    state_size: int,
    input_pos: np.ndarray,
    input_slots: np.ndarray,
    zero_pos: np.ndarray,
    output_cells: np.ndarray,
    levels: list[FusedLevel],
) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(b"fused-v2")
    h.update(int(state_size).to_bytes(8, "little"))
    for arr in (input_pos, input_slots, zero_pos, output_cells):
        h.update(np.ascontiguousarray(arr, dtype=_ID).tobytes())
    for lv in levels:
        h.update(b"L")
        if lv.gather is not None:
            h.update(lv.gather.tobytes())
        for k in lv.kernels:
            h.update(
                b"%d,%d,%d,%d,%d,%d,%d,%d,%d;"
                % (
                    k.opcode,
                    k.out_start,
                    k.out_stop,
                    k.a_src,
                    k.a_start,
                    k.a_stop,
                    k.b_src,
                    k.b_start,
                    k.b_stop,
                )
            )
    return h.hexdigest()


def execute_fused(fused: FusedPlan, state: np.ndarray) -> None:
    """Run every level over a ``(state_size, B)`` C-contiguous state.

    All kernel reads and writes go through flat 1-D contiguous views
    — cell range ``[lo, hi)`` is flat range ``[lo*B, hi*B)`` — with
    one merged fancy gather per level for the non-contiguous operands.

    When tracing is enabled, a sampled fraction of sweeps (one in
    :func:`repro.obs.trace.set_sample_every`, default 16) records a
    span per dependence level — per-kernel timing at full rate would
    dwarf the microsecond-scale ufunc calls it measures.
    """
    if trace.is_on() and trace.should_sample():
        _execute_fused_traced(fused, state)
        return
    batch = state.shape[1]
    flat = state.reshape(-1)
    for lv in fused.levels:
        gf = state[lv.gather].reshape(-1) if lv.gather is not None else None
        for k in lv.kernels:
            a_buf = flat if k.a_src == SRC_STATE else gf
            b_buf = flat if k.b_src == SRC_STATE else gf
            _UFUNCS[k.opcode](
                a_buf[k.a_start * batch : k.a_stop * batch],
                b_buf[k.b_start * batch : k.b_stop * batch],
                out=flat[k.out_start * batch : k.out_stop * batch],
            )


def _execute_fused_traced(fused: FusedPlan, state: np.ndarray) -> None:
    """The sampled-sweep twin of :func:`execute_fused`: identical
    kernel calls, plus one span per level."""
    batch = state.shape[1]
    flat = state.reshape(-1)
    with trace.span(
        "fused.sweep",
        "engine",
        workload=fused.source_name,
        batch=batch,
        levels=len(fused.levels),
    ):
        for li, lv in enumerate(fused.levels):
            with trace.span(
                "fused.level",
                "engine",
                level=li + 1,
                kernels=len(lv.kernels),
                gather_rows=0 if lv.gather is None else int(
                    lv.gather.shape[0]
                ),
            ):
                gf = (
                    state[lv.gather].reshape(-1)
                    if lv.gather is not None
                    else None
                )
                for k in lv.kernels:
                    a_buf = flat if k.a_src == SRC_STATE else gf
                    b_buf = flat if k.b_src == SRC_STATE else gf
                    _UFUNCS[k.opcode](
                        a_buf[k.a_start * batch : k.a_stop * batch],
                        b_buf[k.b_start * batch : k.b_stop * batch],
                        out=flat[k.out_start * batch : k.out_stop * batch],
                    )


def bind_sweep(
    fused: FusedPlan, batch: int
) -> tuple[np.ndarray, Callable[[], None]]:
    """Bind a reusable ``(state, sweep)`` pair for one batch width.

    Allocates the state buffer and one shared gather scratch block
    once, precomputes all operand/result views, and returns a
    zero-argument sweep whose hot path is nothing but pre-bound ufunc
    dispatches (gathers run through ``np.take`` into the scratch —
    ``mode="clip"`` skips the bounds check the lowering already
    proved).  Every level gathers into the *same* scratch prefix: the
    serial reuse keeps the block cache-hot across the sweep, where
    per-level persistent blocks would all be cold by the time their
    level comes around again.  The pair is safe to reuse across runs:
    single-assignment guarantees every cell is rewritten before it is
    read, and the pinned zero cells are never written at all.
    """
    state = fused.make_state(batch)
    flat = state.reshape(-1)
    max_gather = max(
        (lv.gather.shape[0] for lv in fused.levels if lv.gather is not None),
        default=0,
    )
    scratch = np.empty((max_gather, batch), dtype=np.float64)
    sflat = scratch.reshape(-1)
    prog: list[tuple[Callable, tuple]] = []
    for lv in fused.levels:
        if lv.gather is not None:
            prog.append(
                (
                    np.take,
                    (
                        state,
                        lv.gather,
                        0,
                        scratch[: lv.gather.shape[0]],
                        "clip",
                    ),
                )
            )
        for k in lv.kernels:
            a_buf = flat if k.a_src == SRC_STATE else sflat
            b_buf = flat if k.b_src == SRC_STATE else sflat
            prog.append(
                (
                    _UFUNCS[k.opcode],
                    (
                        a_buf[k.a_start * batch : k.a_stop * batch],
                        b_buf[k.b_start * batch : k.b_stop * batch],
                        flat[k.out_start * batch : k.out_stop * batch],
                    ),
                )
            )

    def sweep(_prog: list = prog) -> None:
        for f, args in _prog:
            f(*args)

    return state, sweep


# ---------------------------------------------------------------------
# Plan-specialized codegen
# ---------------------------------------------------------------------
def codegen_source(fused: FusedPlan) -> str:
    """Straight-line Python source for one plan's kernel sweep.

    The emitted module defines ``_bind(state)``: a factory that hoists
    the shared gather scratch and every operand/result view into
    closure cells (one prologue statement each, deduplicated) and
    returns a ``_sweep()`` whose body is one pre-bound call per
    gather/kernel — the generated equivalent of :func:`bind_sweep`,
    minus the dispatch loop.  Gather index arrays are referenced by
    per-level names (``_g<level>``) that :func:`compile_sweep` binds
    from the plan.  The source is a pure function of the fused plan,
    so it is safe to cache by :attr:`FusedPlan.fingerprint` and
    recompile anywhere.
    """
    prologue: list[str] = []
    body: list[str] = []
    views: dict[tuple, str] = {}

    def view(buf: str, start: int, stop: int, key: tuple) -> str:
        name = views.get(key)
        if name is None:
            name = f"_v{len(views)}"
            views[key] = name
            prologue.append(f"    {name} = {buf}[{start}*_B:{stop}*_B]")
        return name

    def operand(src: int, start: int, stop: int, li: int) -> str:
        if src == SRC_STATE:
            return view("_f", start, stop, ("s", start, stop))
        # All levels share one scratch block (kept cache-hot by serial
        # reuse), so gather views dedupe on the range alone.
        return view("_sf", start, stop, ("g", start, stop))

    max_gather = max(
        (lv.gather.shape[0] for lv in fused.levels if lv.gather is not None),
        default=0,
    )
    if max_gather:
        prologue.append(f"    _scr = _empty(({max_gather}, _B))")
        prologue.append("    _sf = _scr.reshape(-1)")
    takes: dict[int, str] = {}
    for li, lv in enumerate(fused.levels):
        if lv.gather is not None:
            n = lv.gather.shape[0]
            tgt = takes.get(n)
            if tgt is None:
                tgt = f"_t{n}"
                takes[n] = tgt
                prologue.append(f"    {tgt} = _scr[:{n}]")
            body.append(f"        _take(state, _g{li}, 0, {tgt}, 'clip')")
        for k in lv.kernels:
            out = view(
                "_f", k.out_start, k.out_stop, ("s", k.out_start, k.out_stop)
            )
            body.append(
                f"        _{_OP_NAMES[k.opcode]}("
                f"{operand(k.a_src, k.a_start, k.a_stop, li)}, "
                f"{operand(k.b_src, k.b_start, k.b_stop, li)}, "
                f"{out})"
            )
    lines = [
        f"# fused sweep: {len(fused.levels)} levels, "
        f"{fused.num_ops} ops, fingerprint {fused.fingerprint}",
        "def _bind(state):",
        "    _B = state.shape[1]",
        "    _f = state.reshape(-1)",
        *prologue,
        "    def _sweep():",
        *(body if body else ["        pass"]),
        "    return _sweep",
    ]
    return "\n".join(lines) + "\n"


def compile_sweep(
    fused: FusedPlan, source: str | None = None
) -> Callable[[np.ndarray], Callable[[], None]]:
    """``exec``-compile a plan's sweep source into its bind factory.

    The returned factory takes a ``(state_size, B)`` state buffer (as
    produced by :meth:`FusedPlan.make_state`) and returns the buffer's
    zero-argument sweep; call it once per batch width and reuse both.

    Args:
        fused: The plan providing the gather index arrays.
        source: Pre-generated source (e.g. from the artifact cache);
            regenerated from ``fused`` when omitted.
    """
    if source is None:
        source = codegen_source(fused)
    namespace: dict[str, object] = {
        "_add": np.add,
        "_mul": np.multiply,
        "_take": np.take,
        "_empty": np.empty,
    }
    for li, lv in enumerate(fused.levels):
        if lv.gather is not None:
            namespace[f"_g{li}"] = lv.gather
    exec(compile(source, "<fused-codegen>", "exec"), namespace)
    return namespace["_bind"]  # type: ignore[return-value]


#: Process-wide compiled bind-factory memo, keyed by plan fingerprint.
_SWEEP_MEMO: dict[str, Callable[[np.ndarray], Callable[[], None]]] = {}


def _codegen_compiles():
    return get_registry().counter(
        "repro_codegen_compiles_total",
        "Fused-codegen sweep compilations by memo outcome",
        label_names=("outcome",),
    )


def compiled_sweep(
    fused: FusedPlan, source: str | None = None
) -> Callable[[np.ndarray], Callable[[], None]]:
    """Memoized :func:`compile_sweep` (one compile per plan content)."""
    fn = _SWEEP_MEMO.get(fused.fingerprint)
    if fn is None:
        _codegen_compiles().inc(outcome="miss")
        with trace.span(
            "codegen.compile",
            "engine",
            workload=fused.source_name,
            ops=fused.num_ops,
        ):
            fn = compile_sweep(fused, source)
        _SWEEP_MEMO[fused.fingerprint] = fn
    else:
        _codegen_compiles().inc(outcome="hit")
    return fn
