"""Unit tests for the fig.-3 spatial mapper and remaining experiment
helpers not covered elsewhere."""

import pytest

from repro.experiments.spatial import (
    systolic_peak_utilization,
    tree_peak_utilization,
    utilization_sweep,
)
from repro.graphs import DAGBuilder, binarize
from repro.testing import make_chain_dag, make_random_dag, make_wide_dag


def full_binary_tree(depth: int):
    """A perfectly tree-shaped DAG: the best case for PE trees."""
    b = DAGBuilder()
    level = [b.add_input() for _ in range(1 << depth)]
    toggle = True
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            if toggle:
                nxt.append(b.add_add([level[i], level[i + 1]]))
            else:
                nxt.append(b.add_mul([level[i], level[i + 1]]))
        level = nxt
        toggle = not toggle
    return b.build("tree")


class TestTreeUtilization:
    def test_perfect_tree_fully_utilizes(self):
        dag = full_binary_tree(4)
        for depth in (1, 2, 3, 4):
            assert tree_peak_utilization(dag, depth) == 1.0

    def test_chain_cannot_fill_tree(self):
        dag = binarize(make_chain_dag(length=20)).dag
        # A chain of 2-input ops with one fresh leaf per stage: a
        # depth-3 cone holds 3 chain nodes of 7 PEs.
        util = tree_peak_utilization(dag, 3)
        assert util == pytest.approx(3 / 7)

    def test_replication_counts_toward_utilization(self):
        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        s = b.add_add([x, y])
        b.add_mul([s, s])
        dag = b.build()
        # depth 2: p at root, s replicated on both layer-1 PEs -> 3/3.
        assert tree_peak_utilization(dag, 2) == 1.0

    def test_zero_depth(self):
        dag = full_binary_tree(2)
        assert tree_peak_utilization(dag, 0) == 0.0


class TestSystolicUtilization:
    def test_chain_maps_to_single_row(self):
        dag = binarize(make_chain_dag(length=30)).dag
        # 1xN array: a chain is the ideal systolic occupant.
        util = systolic_peak_utilization(dag, 1, 8, seeds=40)
        assert util > 0.5

    def test_wide_random_dag_underutilizes_big_arrays(self):
        dag = binarize(make_random_dag(161, num_ops=300)).dag
        small = systolic_peak_utilization(dag, 2, 2, seeds=30)
        large = systolic_peak_utilization(dag, 8, 8, seeds=30)
        assert large <= small

    def test_empty_array(self):
        dag = full_binary_tree(2)
        assert systolic_peak_utilization(dag, 0, 0) == 0.0

    def test_sweep_points(self):
        dag = binarize(make_random_dag(162, num_ops=200)).dag
        points = utilization_sweep(dag, (2, 4, 8))
        assert [p.inputs for p in points] == [2, 4, 8]
        for p in points:
            assert 0.0 <= p.systolic_utilization <= 1.0
            assert 0.0 < p.tree_utilization <= 1.0
