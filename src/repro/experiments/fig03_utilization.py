"""Fig. 3(c): peak datapath utilization, systolic array vs PE tree."""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs import binarize
from ..workloads import build_workload
from .spatial import UtilizationPoint, utilization_sweep


@dataclass(frozen=True)
class UtilizationResult:
    workload: str
    points: list[UtilizationPoint]


def run(
    workload: str = "tretail",
    scale: float = 0.05,
    input_counts: tuple[int, ...] = (2, 4, 8, 16),
) -> UtilizationResult:
    dag = build_workload(workload, scale=scale)
    bdag = binarize(dag).dag
    return UtilizationResult(
        workload=workload,
        points=utilization_sweep(bdag, input_counts),
    )


def render(result: UtilizationResult) -> str:
    from ..analysis import format_table

    rows = [
        (
            p.inputs,
            f"{100 * p.tree_utilization:.0f}%",
            f"{100 * p.systolic_utilization:.0f}%",
        )
        for p in result.points
    ]
    return format_table(
        ["inputs", "tree peak util", "systolic peak util"],
        rows,
        title=(
            f"fig. 3(c) — peak utilization on {result.workload} "
            "(paper: tree stays ~100%, systolic collapses)"
        ),
    )
