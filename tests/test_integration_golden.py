"""Integration: compile -> simulate == golden, across configs/workloads.

This is invariant 1 of DESIGN.md — the end-to-end guarantee that the
whole hardware/software stack computes exactly what the DAG says, with
the compiler's register-address predictions cross-checked against the
hardware model's priority encoder on every read.
"""

import numpy as np
import pytest

from repro.arch import (
    ArchConfig,
    MIN_EDP_CONFIG,
    MIN_ENERGY_CONFIG,
    Topology,
)
from repro.compiler import compile_dag
from repro.sim import evaluate_dag, run_program
from repro.workloads import (
    PCParams,
    banded_lower,
    build_workload,
    generate_pc,
    sptrsv_dag,
)
from repro.testing import (
    compile_and_verify,
    make_chain_dag,
    make_random_dag,
    make_wide_dag,
    random_inputs,
    reference_values,
)


class TestGoldenAcrossConfigs:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_depths(self, depth):
        cfg = ArchConfig(depth=depth, banks=16, regs_per_bank=16)
        compile_and_verify(make_random_dag(101, num_ops=120), cfg)

    @pytest.mark.parametrize("banks", [8, 16, 32, 64])
    def test_banks(self, banks):
        cfg = ArchConfig(depth=3, banks=banks, regs_per_bank=16)
        compile_and_verify(make_random_dag(102, num_ops=120), cfg)

    @pytest.mark.parametrize("regs", [4, 8, 64])
    def test_register_depths(self, regs):
        cfg = ArchConfig(depth=2, banks=8, regs_per_bank=regs)
        compile_and_verify(make_random_dag(103, num_ops=150), cfg)

    @pytest.mark.parametrize(
        "topology",
        [
            Topology.CROSSBAR_BOTH,
            Topology.OUTPUT_PER_LAYER,
            Topology.OUTPUT_SINGLE,
        ],
    )
    def test_topologies(self, topology):
        dag = make_random_dag(104, num_ops=120)
        result = compile_dag(dag, MIN_ENERGY_CONFIG, topology=topology)
        inputs = random_inputs(dag)
        reference = reference_values(dag, inputs)
        from repro.arch import Interconnect
        from repro.sim import Simulator

        sim = Simulator(
            result.program,
            Interconnect(result.program.config, topology),
        ).run(inputs, reference=reference)
        assert sim.outputs

    @pytest.mark.parametrize("strategy", ["conflict_aware", "random"])
    def test_mapping_strategies(self, strategy):
        dag = make_random_dag(105, num_ops=120)
        result = compile_dag(
            dag, MIN_ENERGY_CONFIG, mapping_strategy=strategy
        )
        inputs = random_inputs(dag)
        run_program(
            result.program, inputs, reference=reference_values(dag, inputs)
        )


class TestGoldenAcrossShapes:
    def test_serial_chain(self, tiny_config):
        compile_and_verify(make_chain_dag(length=25), tiny_config)

    def test_flat_reduction(self, tiny_config):
        compile_and_verify(make_wide_dag(width=40), tiny_config)

    def test_high_fanout(self, tiny_config):
        compile_and_verify(
            make_random_dag(106, num_leaves=4, num_ops=100, recent_window=6),
            tiny_config,
        )

    def test_single_node_dag(self, tiny_config):
        from repro.graphs import DAGBuilder

        b = DAGBuilder()
        x, y = b.add_input(), b.add_input()
        b.add_add([x, y])
        compile_and_verify(b.build("single"), tiny_config)


class TestGoldenOnWorkloads:
    def test_probabilistic_circuit(self):
        dag = generate_pc(
            PCParams(num_vars=12, target_nodes=600, depth=10, seed=3)
        )
        compile_and_verify(dag, MIN_ENERGY_CONFIG)

    def test_sptrsv_end_to_end_numeric(self):
        """Solve L x = b on the simulated DPU-v2 and compare to scipy."""
        matrix = banded_lower(48, bandwidth=4, seed=5)
        problem = sptrsv_dag(matrix, name="solve")
        result = compile_dag(
            problem.dag, MIN_ENERGY_CONFIG, keep=problem.row_node
        )
        rng = np.random.default_rng(7)
        b = rng.uniform(-1.0, 1.0, size=problem.n)
        sim = run_program(result.program, problem.input_vector(b))
        x = np.array(
            [sim.values[result.node_map[n]] for n in problem.row_node]
        )
        np.testing.assert_allclose(
            x, problem.reference_solve(b), rtol=1e-9
        )

    def test_sptrsv_multiple_rhs_same_program(self):
        """The paper's use case: static pattern, changing RHS."""
        matrix = banded_lower(32, bandwidth=3, seed=8)
        problem = sptrsv_dag(matrix)
        result = compile_dag(
            problem.dag, MIN_ENERGY_CONFIG, keep=problem.row_node
        )
        rng = np.random.default_rng(9)
        for _ in range(3):
            b = rng.uniform(-1.0, 1.0, size=problem.n)
            sim = run_program(result.program, problem.input_vector(b))
            x = np.array(
                [sim.values[result.node_map[n]] for n in problem.row_node]
            )
            np.testing.assert_allclose(
                x, problem.reference_solve(b), rtol=1e-9
            )

    @pytest.mark.parametrize("name", ["tretail", "bp_200"])
    def test_suite_workloads_verified(self, name):
        dag = build_workload(name, scale=0.03)
        result = compile_dag(dag, MIN_EDP_CONFIG, validate_input=False)
        inputs = random_inputs(dag, lo=0.9, hi=1.1)
        reference = reference_values(dag, inputs)
        run_program(
            result.program,
            inputs,
            reference=reference,
            check_addresses=result.allocation.read_addrs,
        )


class TestBatchedEngineEquivalence:
    """The two-phase engine is bitwise-identical to the scalar path.

    Phase 1 (verified lowering) + phase 2 (vectorized batch sweep)
    must reproduce the reference simulator's outputs exactly — same
    IEEE-double operations in the same tree order — and the plan's
    analytic ActivityCounters must equal the simulated ones scaled by
    the batch size.
    """

    @staticmethod
    def _assert_batch_matches_scalar(dag, config, batch, seed=0, **compile_kw):
        from repro.sim import BatchSimulator

        result = compile_dag(dag, config, seed=seed, **compile_kw)
        plan = result.plan()  # lowering re-verifies addresses/hazards
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0.8, 1.2, size=(batch, dag.num_inputs))
        batch_result = BatchSimulator(plan).run(matrix)
        assert batch_result.outputs, "plan produced no outputs"
        scalar = None
        for row in range(batch):
            scalar = run_program(result.program, list(matrix[row]))
            for var, column in batch_result.outputs.items():
                assert var in scalar.outputs
                # Bitwise-identical, not just close.
                assert column[row] == scalar.outputs[var]
        assert batch_result.peak_occupancy == scalar.peak_occupancy
        assert batch_result.counters == scalar.counters.scaled(batch)
        assert plan.counters == scalar.counters
        return batch_result

    @pytest.mark.parametrize("batch", [1, 7, 64])
    @pytest.mark.parametrize("name", ["tretail", "bp_200"])
    def test_golden_workloads(self, name, batch):
        dag = build_workload(name, scale=0.03)
        self._assert_batch_matches_scalar(
            dag, MIN_EDP_CONFIG, batch, validate_input=False
        )

    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_random_dag_with_spills(self, batch, spilly_config):
        self._assert_batch_matches_scalar(
            make_random_dag(112, num_ops=150), spilly_config, batch
        )

    @pytest.mark.parametrize("batch", [1, 7])
    def test_shapes(self, batch, tiny_config):
        for dag in (make_chain_dag(length=25), make_wide_dag(width=40)):
            self._assert_batch_matches_scalar(dag, tiny_config, batch)

    def test_sptrsv_batched_multiple_rhs(self):
        """The paper's serving use case: one plan, many right-hand
        sides, solved in a single vectorized sweep."""
        from repro.sim import BatchSimulator

        matrix = banded_lower(32, bandwidth=3, seed=8)
        problem = sptrsv_dag(matrix)
        result = compile_dag(
            problem.dag, MIN_ENERGY_CONFIG, keep=problem.row_node
        )
        plan = result.plan()
        rng = np.random.default_rng(9)
        rhs = rng.uniform(-1.0, 1.0, size=(5, problem.n))
        inputs = np.stack([problem.input_vector(b) for b in rhs])
        batch_result = BatchSimulator(plan).run(inputs)
        for row, b in enumerate(rhs):
            x = np.array(
                [
                    batch_result.outputs[result.node_map[n]][row]
                    for n in problem.row_node
                ]
            )
            np.testing.assert_allclose(
                x, problem.reference_solve(b), rtol=1e-9
            )


class TestCompileStatsConsistency:
    def test_instruction_counts_add_up(self, tiny_config):
        dag = make_random_dag(107, num_ops=150)
        result = compile_dag(dag, tiny_config)
        s = result.stats
        mix = result.program.count_by_mnemonic()
        assert mix.get("exec", 0) == s.exec_instructions
        assert (
            mix.get("copy", 0) + mix.get("copy_4", 0)
            == s.copy_instructions
        )
        assert (
            mix.get("load", 0) == s.load_instructions
        )
        assert (
            mix.get("store", 0) + mix.get("store_4", 0)
            == s.store_instructions
        )
        assert mix.get("nop", 0) == s.nop_instructions

    def test_blocks_equal_execs(self, tiny_config):
        dag = make_random_dag(108)
        result = compile_dag(dag, tiny_config)
        assert result.stats.num_blocks == result.stats.exec_instructions

    def test_step_timings_recorded(self, tiny_config):
        result = compile_dag(make_random_dag(109), tiny_config)
        for step in ("binarize", "decompose", "map", "schedule",
                     "reorder", "spill", "regalloc"):
            assert step in result.stats.step_seconds
