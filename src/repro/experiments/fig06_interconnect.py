"""Fig. 6(e): bank conflicts across interconnect topologies.

The paper maps the workloads with the same compiler against the three
crossbar-bearing design points and reports conflicts normalized to the
full-crossbar design (a): (b) costs ~2.4x the conflicts (for ~1% added
latency), and (c) ~19x.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import ArchConfig, MIN_EDP_CONFIG, Topology
from ..graphs import DAG
from ..runner.orchestrator import parallel_map
from ..workloads import DEFAULT_SCALE, build_suite
from .common import measure


@dataclass(frozen=True)
class TopologyRow:
    topology: Topology
    conflicts: int
    cycles: int
    conflicts_normalized: float
    latency_normalized: float


@dataclass(frozen=True)
class InterconnectResult:
    rows: list[TopologyRow]


TOPOLOGIES = (
    Topology.CROSSBAR_BOTH,
    Topology.OUTPUT_PER_LAYER,
    Topology.OUTPUT_SINGLE,
)


def _cell(args: tuple[DAG, ArchConfig, Topology, int]) -> tuple[int, int]:
    dag, config, topology, seed = args
    m = measure(dag, config, topology=topology, seed=seed)
    return m.compile_result.stats.bank_conflicts, m.counters.cycles


def run(
    config: ArchConfig = MIN_EDP_CONFIG,
    scale: float = DEFAULT_SCALE,
    groups: tuple[str, ...] = ("pc", "sptrsv"),
    seed: int = 0,
    jobs: int | None = None,
) -> InterconnectResult:
    suite = build_suite(groups=groups, scale=scale)
    tasks = [
        (dag, config, topology, seed)
        for topology in TOPOLOGIES
        for dag in suite.values()
    ]
    cells = parallel_map(_cell, tasks, jobs=jobs, desc="fig06")
    totals: dict[Topology, tuple[int, int]] = {}
    per_topology = len(suite)
    for i, topology in enumerate(TOPOLOGIES):
        chunk = cells[i * per_topology : (i + 1) * per_topology]
        totals[topology] = (
            sum(c for c, _ in chunk),
            sum(cy for _, cy in chunk),
        )
    base_conflicts, base_cycles = totals[Topology.CROSSBAR_BOTH]
    # Our mapper often reaches *zero* conflicts on the full crossbar
    # (the paper's (a) is its 1x reference); fall back to design (b)
    # as the reference so the ratios stay meaningful.
    reference = base_conflicts or totals[Topology.OUTPUT_PER_LAYER][0] or 1
    rows = [
        TopologyRow(
            topology=t,
            conflicts=c,
            cycles=cy,
            conflicts_normalized=c / reference,
            latency_normalized=cy / base_cycles if base_cycles else 1.0,
        )
        for t, (c, cy) in totals.items()
    ]
    return InterconnectResult(rows=rows)


def render(result: InterconnectResult) -> str:
    from ..analysis import format_table

    label = {
        Topology.CROSSBAR_BOTH: "(a) crossbar both",
        Topology.OUTPUT_PER_LAYER: "(b) one PE/layer out",
        Topology.OUTPUT_SINGLE: "(c) one PE out",
    }
    rows = [
        (
            label[r.topology],
            r.conflicts,
            f"{r.conflicts_normalized:.1f}x",
            f"{r.latency_normalized:.3f}x",
        )
        for r in result.rows
    ]
    return format_table(
        ["design", "conflicts", "vs ref", "latency vs (a)"],
        rows,
        title=(
            "fig. 6(e) — bank conflicts by topology "
            "(paper: (a)=1x, (b)=2.4x, (c)=19x; (b) latency +1%; "
            "ref = (a), or (b) when (a) hits zero)"
        ),
    )
