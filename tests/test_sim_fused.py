"""Fused execution engine: lowering, bitwise parity, codegen, binding.

The fused engine's whole contract is "same IEEE operations, only
independent lanes regrouped" — so nearly every test here is a bitwise
comparison against the step interpreter, across generated DAGs
(hypothesis), every synthetic family, the partitioned compile path and
the serving assembly path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import ArchConfig
from repro.compiler import compile_dag
from repro.compiler.arrays import DagArrays
from repro.errors import SimulationError, SpillError
from repro.runner.cache import configure_cache, get_cache
from repro.runner.fingerprint import codegen_key, fused_key, plan_key
from repro.sim import (
    AUTO_FUSED_CELL_CAP,
    ENGINES,
    BatchSimulator,
    bind_sweep,
    codegen_source,
    compiled_sweep,
    estimated_fused_cells,
    execute_fused,
    fuse_plan,
)
from repro.sim.batch import BOUND_SWEEP_CAP
from repro.sim.plan import (
    ComputeStep,
    MoveStep,
    coalesce_moves,
    contiguous_slice,
)
from repro.workloads.synth import SYNTH_FAMILIES, generate_synth

CFG = ArchConfig(depth=2, banks=8, regs_per_bank=16)


def _inputs(dag, batch, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.9, 1.1, size=(batch, max(dag.num_inputs, 1)))


def _assert_bitwise(got, want):
    """Outputs equal down to the bit pattern (NaN == NaN included)."""
    assert sorted(got) == sorted(want)
    for var in want:
        a = np.asarray(got[var], dtype=np.float64)
        b = np.asarray(want[var], dtype=np.float64)
        assert np.array_equal(
            a.view(np.uint64), b.view(np.uint64)
        ), f"var {var}: {a!r} != {b!r}"


# ---------------------------------------------------------------------------
# Step-tape helpers the fused lowering builds on
# ---------------------------------------------------------------------------
class TestContiguousSlice:
    def test_run_detected(self):
        assert contiguous_slice(np.array([4, 5, 6, 7])) == (4, 8)

    def test_singleton(self):
        assert contiguous_slice(np.array([9])) == (9, 10)

    def test_empty_gap_and_descending(self):
        assert contiguous_slice(np.array([], dtype=np.int64)) is None
        assert contiguous_slice(np.array([1, 3])) is None
        assert contiguous_slice(np.array([5, 4, 3])) is None


class TestCoalesceMoves:
    def _move(self, src, dst):
        return MoveStep(np.asarray(src), np.asarray(dst))

    def test_disjoint_run_collapses(self):
        steps = [
            self._move([0], [10]),
            self._move([1], [11]),
            self._move([2], [12]),
        ]
        out = coalesce_moves(steps)
        assert len(out) == 1
        assert out[0].src.tolist() == [0, 1, 2]
        assert out[0].dst.tolist() == [10, 11, 12]
        # The merged vectors form the slice fast path.
        assert out[0].dst_slice == (10, 13)

    def test_read_after_write_blocks_merge(self):
        # Second move reads cell 10, which the first wrote: merging
        # would gather pre-move data.
        steps = [self._move([0], [10]), self._move([10], [11])]
        assert len(coalesce_moves(steps)) == 2

    def test_duplicate_destination_blocks_merge(self):
        steps = [self._move([0], [10]), self._move([1], [10])]
        assert len(coalesce_moves(steps)) == 2

    def test_compute_step_breaks_runs(self):
        dag = generate_synth("layered", 30, seed=2)
        plan = compile_dag(dag, CFG).plan()
        kinds = [type(s) for s in plan.steps]
        assert ComputeStep in kinds  # sanity: tape is mixed
        # No two adjacent mergeable moves survive coalescing.
        assert coalesce_moves(list(plan.steps)) == list(plan.steps)

    def test_lower_coalesce_flag(self):
        from repro.sim.plan import lower_program

        dag = generate_synth("wide", 40, seed=5)
        result = compile_dag(dag, CFG)
        coalesced = lower_program(result.program)
        raw = lower_program(result.program, coalesce=False)
        n_coal = sum(1 for s in coalesced.steps if type(s) is MoveStep)
        n_raw = sum(1 for s in raw.steps if type(s) is MoveStep)
        assert n_coal < n_raw  # loads/stores actually merged
        sim_c = BatchSimulator(coalesced).run(_inputs(dag, 5))
        sim_r = BatchSimulator(raw).run(_inputs(dag, 5))
        _assert_bitwise(sim_c.outputs, sim_r.outputs)


# ---------------------------------------------------------------------------
# Fused lowering structure
# ---------------------------------------------------------------------------
class TestFusePlan:
    def test_kernel_count_bounded_by_dag_groups(self):
        """One super-op kernel per (level, opcode) at most — the DAG's
        level/opcode grouping is the lower bound the fusion targets."""
        from repro.graphs import binarize

        dag = generate_synth("layered", 80, seed=3)
        result = compile_dag(dag, CFG)
        fused = fuse_plan(result.plan())
        groups = DagArrays.of(binarize(dag).dag).level_opcode_groups()
        n_groups = sum(len(g) for g in groups)
        n_kernels = sum(len(lv.kernels) for lv in fused.levels)
        assert 0 < n_kernels <= n_groups
        for lv in fused.levels:
            opcodes = [k.opcode for k in lv.kernels]
            assert len(opcodes) <= 2  # at most one ADD + one MUL kernel
            assert opcodes == sorted(set(opcodes))

    def test_level_opcode_groups_partition_arith_nodes(self):
        dag = generate_synth("diamond", 50, seed=1)
        arrays = DagArrays.of(dag)
        groups = arrays.level_opcode_groups()
        assert groups[0] == []  # inputs only
        seen = np.concatenate(
            [ids for lvl in groups for _, ids in lvl]
            or [np.array([], dtype=np.int64)]
        )
        arith = np.flatnonzero(~arrays.is_input)
        assert sorted(seen.tolist()) == sorted(arith.tolist())
        for lvl in groups:
            codes = [code for code, _ in lvl]
            assert codes == sorted(codes)

    def test_estimate_matches_lowering(self):
        dag = generate_synth("reuse", 60, seed=9)
        plan = compile_dag(dag, CFG).plan()
        estimate = estimated_fused_cells(plan)
        real = fuse_plan(plan).state_size
        # The estimate skips zero/passthrough bookkeeping cells; it
        # must never be more than a hair away from the real layout.
        assert 0 <= real - estimate <= 4

    def test_auto_resolves_by_cell_cap(self):
        dag = generate_synth("deep", 30, seed=4)
        plan = compile_dag(dag, CFG).plan()
        assert estimated_fused_cells(plan) <= AUTO_FUSED_CELL_CAP
        assert BatchSimulator(plan, engine="auto").engine == "fused"

    def test_unknown_engine_rejected(self):
        dag = generate_synth("deep", 10, seed=0)
        plan = compile_dag(dag, CFG).plan()
        with pytest.raises(SimulationError, match="unknown engine"):
            BatchSimulator(plan, engine="warp")
        assert "warp" not in ENGINES


# ---------------------------------------------------------------------------
# Bitwise parity: every engine, every family, every entry point
# ---------------------------------------------------------------------------
class TestEngineParity:
    @pytest.mark.parametrize("family", sorted(SYNTH_FAMILIES))
    @pytest.mark.parametrize("engine", ["fused", "codegen"])
    def test_families_bitwise_equal(self, family, engine):
        dag = generate_synth(family, 60, seed=13)
        plan = compile_dag(dag, CFG).plan()
        matrix = _inputs(dag, 17, seed=5)
        step = BatchSimulator(plan).run(matrix)
        other = BatchSimulator(plan, engine=engine).run(matrix)
        _assert_bitwise(other.outputs, step.outputs)
        assert other.counters == step.counters
        assert other.peak_occupancy == step.peak_occupancy

    def test_run_rows_parity(self):
        dag = generate_synth("skewed_fanout", 70, seed=2)
        plan = compile_dag(dag, CFG).plan()
        rng = np.random.default_rng(3)
        # Heterogeneous widths: rows only need num_inputs leading cols.
        rows = [
            rng.uniform(0.9, 1.1, size=dag.num_inputs + (i % 3) * 7)
            for i in range(11)
        ]
        step = BatchSimulator(plan).run_rows(rows)
        fused = BatchSimulator(plan, engine="fused").run_rows(rows)
        _assert_bitwise(fused.outputs, step.outputs)
        assert fused.counters == step.counters

    def test_partitioned_run_batch_parity(self):
        dag = generate_synth("layered", 120, seed=6)
        part = compile_dag(
            dag, CFG, validate_input=False, partition_threshold=40
        )
        assert part.num_pieces >= 2
        matrix = _inputs(dag, 9, seed=1)
        step = part.run_batch(matrix)
        for engine in ("fused", "codegen", "auto"):
            other = part.run_batch(matrix, engine=engine)
            _assert_bitwise(other, step)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(sorted(SYNTH_FAMILIES)),
        n=st.integers(min_value=3, max_value=90),
        seed=st.integers(min_value=0, max_value=2**16),
        batch=st.integers(min_value=1, max_value=9),
        value_seed=st.integers(min_value=0, max_value=99),
        engine=st.sampled_from(["fused", "codegen"]),
    )
    def test_property_fused_equals_step(
        self, family, n, seed, batch, value_seed, engine
    ):
        """The acceptance-criterion property: outputs AND counters of
        the fused engines equal the step interpreter bitwise on any
        generated scenario."""
        dag = generate_synth(family, n, seed=seed)
        try:
            plan = compile_dag(dag, CFG).plan()
        except SpillError:
            return  # config legitimately too small — not under test
        matrix = _inputs(dag, batch, seed=value_seed)
        step = BatchSimulator(plan).run(matrix)
        other = BatchSimulator(plan, engine=engine).run(matrix)
        _assert_bitwise(other.outputs, step.outputs)
        assert other.counters == step.counters


# ---------------------------------------------------------------------------
# Bound sweeps: state reuse across runs and batch widths
# ---------------------------------------------------------------------------
class TestBoundSweeps:
    def _plan(self):
        dag = generate_synth("reuse", 80, seed=7)
        return dag, compile_dag(dag, CFG).plan()

    @pytest.mark.parametrize("engine", ["fused", "codegen"])
    def test_repeated_runs_do_not_leak_state(self, engine):
        dag, plan = self._plan()
        sim = BatchSimulator(plan, engine=engine)
        fresh = BatchSimulator(plan)
        for seed in range(4):
            for batch in (5, 2, 5):
                matrix = _inputs(dag, batch, seed=seed)
                _assert_bitwise(
                    sim.run(matrix).outputs, fresh.run(matrix).outputs
                )

    def test_bound_pair_cache_evicts_oldest(self):
        dag, plan = self._plan()
        sim = BatchSimulator(plan, engine="fused")
        for batch in range(1, BOUND_SWEEP_CAP + 4):
            sim.run(_inputs(dag, batch))
        assert len(sim._bound) <= BOUND_SWEEP_CAP
        assert 1 not in sim._bound  # oldest width evicted

    def test_bind_sweep_matches_reference_executor(self):
        dag, plan = self._plan()
        fused = fuse_plan(plan)
        matrix = _inputs(dag, 6, seed=3)
        state, sweep = bind_sweep(fused, 6)
        state[fused.input_pos] = matrix.T[plan.input_slots]
        with np.errstate(over="ignore", invalid="ignore"):
            sweep()
        ref = fused.make_state(6)
        ref[fused.input_pos] = matrix.T[plan.input_slots]
        with np.errstate(over="ignore", invalid="ignore"):
            execute_fused(fused, ref)
        assert np.array_equal(
            state.view(np.uint64), ref.view(np.uint64)
        )


# ---------------------------------------------------------------------------
# Plan-specialized codegen and its artifact cache
# ---------------------------------------------------------------------------
class TestCodegen:
    def _fused(self):
        dag = generate_synth("layered", 70, seed=11)
        plan = compile_dag(dag, CFG).plan()
        return plan, fuse_plan(plan)

    def test_source_is_deterministic(self):
        _, fused = self._fused()
        assert codegen_source(fused) == codegen_source(fused)

    def test_compiled_factory_matches_interpreter(self):
        plan, fused = self._fused()
        bind = compiled_sweep(fused)
        state = fused.make_state(4)
        sweep = bind(state)
        matrix = _inputs_from(plan, 4)
        state[fused.input_pos] = matrix.T[plan.input_slots]
        with np.errstate(over="ignore", invalid="ignore"):
            sweep()
        ref = fused.make_state(4)
        ref[fused.input_pos] = matrix.T[plan.input_slots]
        with np.errstate(over="ignore", invalid="ignore"):
            execute_fused(fused, ref)
        assert np.array_equal(state.view(np.uint64), ref.view(np.uint64))

    def test_source_cached_round_trip(self, tmp_path):
        from repro.runner.cache import cached_codegen_source

        configure_cache(tmp_path / "cache")
        _, fused = self._fused()
        cold = cached_codegen_source(fused)
        assert cold == codegen_source(fused)
        key = codegen_key(fused.fingerprint)
        assert get_cache().get(key) is not None
        # Warm hit returns the stored source verbatim.
        assert cached_codegen_source(fused) == cold

    def test_cache_keys_are_distinct_kinds(self):
        from repro.arch import DEFAULT_TOPOLOGY

        keys = {
            plan_key("abc", DEFAULT_TOPOLOGY),
            fused_key("abc"),
            codegen_key("abc"),
        }
        assert len(keys) == 3


def _inputs_from(plan, batch, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.9, 1.1, size=(batch, max(plan.num_inputs, 1)))
