"""Measure binary-image vs pickle size for cached artifacts.

Compiles a spread of workloads across several design points, then
serializes each lowered plan and compiled program both ways — pickle
protocol 5 and the `runner.imageio` binary image — and reports the
size ratio.  The acceptance bar for the image format is a ratio < 1.0
on every artifact (images must never be *larger* than the pickles
they replaced).

Usage::

    PYTHONPATH=src python tools/image_ratio.py \
        --out results/image_ratio.json
"""

from __future__ import annotations

import argparse
import json
import pickle
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch import ArchConfig  # noqa: E402
from repro.compiler import compile_dag  # noqa: E402
from repro.runner.imageio import dump_plan, dump_program  # noqa: E402
from repro.workloads import generate_synth  # noqa: E402

CASES = [
    ("layered", 60, "D2-B8-R16"),
    ("layered", 200, "D3-B16-R16"),
    ("wide", 120, "D2-B16-R32"),
    ("deep", 80, "D2-B8-R8"),
    ("diamond", 100, "D3-B32-R32"),
    ("reuse", 150, "D2-B8-R16"),
]


def _config(label: str) -> ArchConfig:
    parts = dict((p[0], int(p[1:])) for p in label.split("-"))
    return ArchConfig(
        depth=parts["D"], banks=parts["B"], regs_per_bank=parts["R"]
    )


def measure() -> dict:
    records = []
    for family, n, label in CASES:
        dag = generate_synth(family, n, seed=1)
        result = compile_dag(dag, _config(label))
        plan = result.plan()
        plan_img = len(dump_plan(plan))
        plan_pkl = len(pickle.dumps(plan, protocol=5))
        prog_img = len(
            dump_program(result.program, result.allocation.read_addrs)
        )
        prog_pkl = len(
            pickle.dumps(
                (result.program, result.allocation.read_addrs), protocol=5
            )
        )
        records.append({
            "family": family,
            "nodes": dag.num_nodes,
            "config": label,
            "plan_image_bytes": plan_img,
            "plan_pickle_bytes": plan_pkl,
            "plan_ratio": round(plan_img / plan_pkl, 4),
            "program_image_bytes": prog_img,
            "program_pickle_bytes": prog_pkl,
            "program_ratio": round(prog_img / prog_pkl, 4),
        })
    plan_ratios = [r["plan_ratio"] for r in records]
    prog_ratios = [r["program_ratio"] for r in records]
    return {
        "schema": "repro-image-ratio-v1",
        "records": records,
        "summary": {
            "plan_ratio_mean": round(statistics.mean(plan_ratios), 4),
            "plan_ratio_max": max(plan_ratios),
            "program_ratio_mean": round(statistics.mean(prog_ratios), 4),
            "program_ratio_max": max(prog_ratios),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results/image_ratio.json")
    args = parser.parse_args(argv)
    doc = measure()
    summary = doc["summary"]
    for rec in doc["records"]:
        print(
            f"{rec['family']:12s} n={rec['nodes']:4d} {rec['config']:11s}"
            f" plan {rec['plan_image_bytes']:7d}B /"
            f" {rec['plan_pickle_bytes']:7d}B = {rec['plan_ratio']:.3f}"
            f"   prog {rec['program_image_bytes']:7d}B /"
            f" {rec['program_pickle_bytes']:7d}B ="
            f" {rec['program_ratio']:.3f}"
        )
    print(
        f"mean ratio: plan {summary['plan_ratio_mean']:.3f}, "
        f"program {summary['program_ratio_mean']:.3f} "
        f"(max {summary['plan_ratio_max']:.3f} / "
        f"{summary['program_ratio_max']:.3f})"
    )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {out}")
    worst = max(summary["plan_ratio_max"], summary["program_ratio_max"])
    if worst >= 1.0:
        print("FAILED: an image came out larger than its pickle")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
