#!/usr/bin/env python3
"""Bring your own DAG: NetworkX import, partitioning, encoding.

Shows the interop surface a downstream user needs: build a graph in
NetworkX (the format the paper's compiler accepts), import it, compile
it, inspect the binary encoding, and use the GRAPHOPT-style partitioner
for graphs too large to decompose in one piece.

Run:  python examples/custom_dag.py
"""

import networkx as nx

from repro import ArchConfig, compile_dag, run_program
from repro.arch import encode_program
from repro.graphs import (
    from_networkx,
    partition_topological,
    to_networkx,
)
from repro.workloads import build_workload


def build_networkx_dag() -> nx.DiGraph:
    """p(x, y, z) = (x+y)*(y+z) + 3xy, as a NetworkX graph.

    Note: ``nx.DiGraph`` cannot express *duplicate* operands (parallel
    edges collapse), so squaring a value needs the native
    :class:`repro.DAGBuilder` (``add_mul([s, s])``) instead.
    """
    g = nx.DiGraph(name="polynomial")
    g.add_node("x", op="input", input_slot=0)
    g.add_node("y", op="input", input_slot=1)
    g.add_node("z", op="input", input_slot=2)
    g.add_node("three", op="input", input_slot=3)  # constants too
    g.add_node("s1", op="add")  # x + y
    g.add_node("s2", op="add")  # y + z
    g.add_node("prod", op="mul")  # (x+y)(y+z)
    g.add_node("xy", op="mul")
    g.add_node("3xy", op="mul")
    g.add_node("p", op="add")
    g.add_edge("x", "s1", operand=0)
    g.add_edge("y", "s1", operand=1)
    g.add_edge("y", "s2", operand=0)
    g.add_edge("z", "s2", operand=1)
    g.add_edge("s1", "prod", operand=0)
    g.add_edge("s2", "prod", operand=1)
    g.add_edge("x", "xy", operand=0)
    g.add_edge("y", "xy", operand=1)
    g.add_edge("three", "3xy", operand=0)
    g.add_edge("xy", "3xy", operand=1)
    g.add_edge("prod", "p", operand=0)
    g.add_edge("3xy", "p", operand=1)
    return g


def main() -> None:
    # NetworkX in, DAG out (any NetworkX-readable format works).
    graph = build_networkx_dag()
    dag = from_networkx(graph)
    print(f"imported {dag.name!r}: {dag.num_nodes} nodes")

    config = ArchConfig(depth=2, banks=8, regs_per_bank=16)
    result = compile_dag(dag, config)
    # x=2, y=5, z=1, three=3 -> (2+5)*(5+1) + 3*2*5 = 72
    sim = run_program(result.program, [2.0, 5.0, 1.0, 3.0])
    root = result.node_map[dag.sinks()[0]]
    print(f"p(2, 5, 1) = {sim.values[root]} (expected 72.0)")
    assert sim.values[root] == 72.0

    # Inspect the dense variable-length binary (fig. 7).
    encoded = encode_program(result.program, result.allocation.read_addrs)
    print(
        f"binary program: {encoded.total_bits} bits packed "
        f"({encoded.instruction_count} instructions, fetch width "
        f"IL={encoded.widths.il}b; padded would be {encoded.padded_bits}b)"
    )

    # Round-trip back to NetworkX for export.
    assert nx.is_directed_acyclic_graph(to_networkx(dag))

    # Large graphs: coarse partitioning first (§V-B compile times).
    big = build_workload("msnbc", scale=0.1)
    parts = partition_topological(big, max_nodes=1000)
    print(
        f"partitioned {big.name} ({big.num_nodes} nodes) into "
        f"{parts.num_parts} dependency-ordered pieces "
        f"({parts.cut_edges} cut edges)"
    )


if __name__ == "__main__":
    main()
