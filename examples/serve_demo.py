#!/usr/bin/env python3
"""The inference service end to end, in one process.

Registers two programs in a warm plan pool, starts the asyncio
micro-batching service plus its HTTP front end, sends a few requests
both in-process and over the wire, then replays a bursty seeded
traffic schedule through the load harness with bitwise verification
of every response against direct plan execution.  A second act runs
the same programs through a 2-shard consistent-hash router — tenant
SLO classes, a graceful drain+restart mid-stream, and the same
bitwise bar.

Run:  python examples/serve_demo.py

For the real daemon + client, see:

    python -m repro serve   --programs synth_layered,tretail --port 8321
    python -m repro serve   --shards 2 --programs synth_layered,tretail
    python -m repro loadgen --url 127.0.0.1:8321 --patterns bursty --check
    python -m repro loadgen --router 2 --chaos restart --check

or, without a server, `curl` once `repro serve` is up:

    curl -s localhost:8321/healthz
    curl -s -X POST localhost:8321/infer \
         -d '{"program": "synth_layered", "inputs": [1.0, 1.02, ...]}'
"""

import asyncio

from repro.serve import (
    BatchPolicy,
    InferenceService,
    LocalShard,
    ProgramSpec,
    RouterSubmitter,
    ShardRouter,
    build_served_program,
    request_inputs,
    run_open_loop,
    slos_from_schedule,
)
from repro.serve.http import HttpClient, start_http_server
from repro.serve.loadtest import LoadReport, ParityChecker, _drive_open_loop
from repro.workloads.traffic import make_traffic

PROGRAMS = (
    ProgramSpec(name="synth_layered", scale=0.05),
    ProgramSpec(name="tretail", scale=0.05),
)


async def main() -> None:
    # A latency-lean policy: dispatch at 32 requests or 1ms after the
    # first arrival, whichever comes first; shed load beyond 512
    # queued per program.
    policy = BatchPolicy(max_batch=32, max_wait_s=0.001, max_queue=512)
    service = InferenceService(policy=policy)
    for spec in PROGRAMS:
        program = service.register(spec)  # compile + lower (or warm hit)
        print(f"registered {program.key}: {program.num_nodes} nodes, "
              f"{program.num_inputs} inputs, "
              f"{program.cycles_per_row} cycles/row")

    async with service:
        # --- direct submission --------------------------------------
        row = request_inputs(service.pool.get("tretail").num_inputs, 7)
        response = await service.submit("tretail", row, tenant="demo")
        print(f"\ntretail request -> {response.status} in "
              f"{response.total_s * 1e3:.2f}ms (batch {response.batch}), "
              f"{len(response.outputs)} outputs")

        # --- the same thing over HTTP -------------------------------
        server = await start_http_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        client = HttpClient("127.0.0.1", port)
        doc = await client.infer("tretail", [float(v) for v in row])
        wire_ok = doc["outputs"] == {
            str(node): value for node, value in response.outputs.items()
        }
        print(f"HTTP round-trip on :{port} -> {doc['status']}, "
              f"outputs bitwise equal: {wire_ok}")
        await client.close()
        server.close()
        await server.wait_closed()

        # --- seeded bursty traffic, every response verified ---------
        schedule = make_traffic(
            "bursty", 200, rate=1500, seed=42,
            programs=tuple(spec.name for spec in PROGRAMS),
        )
        report = await run_open_loop(service, schedule, check=True)
        print(f"\n{report.render()}")
        print(f"\nservice stats: {service.stats_dict()}")

    await sharded()


async def sharded() -> None:
    """Act two: the same programs behind a 2-shard router, with a
    graceful drain+restart mid-campaign and every response still
    bitwise-checked against direct execution."""
    print("\n--- 2-shard router ---")
    policy = BatchPolicy(max_batch=32, max_wait_s=0.001, max_queue=512)
    # Both shards serve both programs (the shared plan pool / artifact
    # cache makes the second registration a warm load): any shard can
    # take over any key, so drain/restart is a pure routing change.
    local = {spec.name: build_served_program(spec) for spec in PROGRAMS}
    shards = []
    for i in range(2):
        shard = LocalShard(f"shard{i}", policy=policy)
        for program in local.values():
            shard.install(program)
        shards.append(shard)

    schedule = make_traffic(
        "multi_tenant", 200, rate=1500, seed=42,
        programs=tuple(spec.name for spec in PROGRAMS),
    )
    router = ShardRouter(
        shards,
        # Heavy tenants batch at the policy default; tail tenants get
        # a tight per-request max_wait (the latency class).
        slos=slos_from_schedule(schedule),
        fingerprints={k: p.fingerprint for k, p in local.items()},
    )

    async def bounce() -> None:
        # Drain + restart the busier shard once half the campaign has
        # resolved: its keys re-route to the ring successor, in-flight
        # requests finish where they are, and after a health check
        # the keys come home.
        while router.stats.routed < schedule.num_requests // 2:
            await asyncio.sleep(0.005)
        owner = max(
            router.stats.per_shard, key=router.stats.per_shard.get
        )
        await router.restart(owner)
        print(f"bounced {owner} mid-campaign "
              f"(drains={router.stats.drains}, "
              f"restarts={router.stats.restarts})")

    async with router:
        for name in local:
            print(f"{name} -> {router.shard_for(name)}")
        chaos = asyncio.ensure_future(bounce())
        checker = ParityChecker(lambda key: local[key])
        outcomes, wall = await _drive_open_loop(
            RouterSubmitter(router), schedule,
            lambda key: local[key].num_inputs,
            1.0, checker,
        )
        await chaos
        report = LoadReport(
            pattern=schedule.pattern, mode="open",
            outcomes=outcomes, wall_s=wall,
            policy={"max_batch": 32, "max_wait_ms": 1.0, "shards": 2},
        )
        print(f"\n{report.render()}")
        print(f"\nrouter stats: {router.stats_dict()}")


if __name__ == "__main__":
    asyncio.run(main())
