"""Architecture template configuration (fig. 5(a) of the paper).

The template has three independent parameters:

* ``D`` — depth of each PE tree (number of PE layers, pipeline depth),
* ``B`` — number of register banks,
* ``R`` — registers per bank,

from which everything else is derived: the number of trees
``T = B / 2^D`` (one bank per tree input), the PE count
``T * (2^D - 1)``, and the instruction bit-widths.

PE and port indexing
--------------------
Within one tree of depth ``D``:

* *input ports* are numbered ``0 .. 2^D - 1`` (these are the register
  read ports; globally, port ``p`` of tree ``t`` is ``t * 2^D + p`` and
  there are exactly ``B`` of them);
* layer ``l`` (1-based) has ``2^(D-l)`` PEs; the PE at (layer ``l``,
  index ``k``) consumes the outputs of (``l-1``, ``2k``) and (``l-1``,
  ``2k+1``), where layer 0 means the input ports.

Globally, PEs are numbered tree-major, then layer, then index, which
gives stable ids for instruction encoding and energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

#: Default operating frequency used throughout the evaluation (§V-B).
DEFAULT_FREQUENCY_HZ = 300e6

#: Word width of the datapath (fp32 in the paper's main configuration).
WORD_BITS = 32


@dataclass(frozen=True)
class ArchConfig:
    """One point of the DPU-v2 design space.

    Attributes:
        depth: PE-tree depth ``D`` (pipeline has ``D + 1`` stages).
        banks: Register bank count ``B`` (must be a multiple of ``2^D``).
        regs_per_bank: Registers per bank ``R``.
        data_mem_rows: Rows in the vector data memory (each row is
            ``B`` words).
        frequency_hz: Clock frequency for time/energy conversions.
        reorder_window: Lookahead window of the pipeline-aware
            reordering pass (300 in the paper's experiments, §IV-C).
    """

    depth: int
    banks: int
    regs_per_bank: int
    data_mem_rows: int = 4096
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    reorder_window: int = 300

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigError(f"depth must be >= 1, got {self.depth}")
        if self.banks < 1:
            raise ConfigError(f"banks must be >= 1, got {self.banks}")
        if self.regs_per_bank < 2:
            raise ConfigError(
                f"regs_per_bank must be >= 2, got {self.regs_per_bank}"
            )
        if self.banks % self.tree_inputs != 0:
            raise ConfigError(
                f"banks ({self.banks}) must be a multiple of 2^depth "
                f"({self.tree_inputs}) so that T = B / 2^D is integral"
            )
        if self.data_mem_rows < 1:
            raise ConfigError("data_mem_rows must be positive")
        if self.reorder_window < 1:
            raise ConfigError("reorder_window must be positive")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def tree_inputs(self) -> int:
        """Inputs per tree, ``2^D``."""
        return 1 << self.depth

    @property
    def num_trees(self) -> int:
        """Number of parallel PE trees, ``T = B / 2^D``."""
        return self.banks // self.tree_inputs

    @property
    def pes_per_tree(self) -> int:
        """PEs in one tree, ``2^D - 1``."""
        return self.tree_inputs - 1

    @property
    def num_pes(self) -> int:
        """Total PE count, ``T * (2^D - 1)``."""
        return self.num_trees * self.pes_per_tree

    @property
    def pipeline_stages(self) -> int:
        """Datapath pipe stages: one per PE layer plus the read stage."""
        return self.depth + 1

    @property
    def total_registers(self) -> int:
        return self.banks * self.regs_per_bank

    def pes_in_layer(self, layer: int) -> int:
        """PEs per tree in 1-based ``layer``."""
        self._check_layer(layer)
        return 1 << (self.depth - layer)

    def _check_layer(self, layer: int) -> None:
        if not 1 <= layer <= self.depth:
            raise ConfigError(
                f"layer {layer} out of range 1..{self.depth}"
            )

    # ------------------------------------------------------------------
    # PE id <-> (tree, layer, index) conversions
    # ------------------------------------------------------------------
    def pe_id(self, tree: int, layer: int, index: int) -> int:
        """Global id of the PE at (tree, 1-based layer, index)."""
        self._check_layer(layer)
        if not 0 <= tree < self.num_trees:
            raise ConfigError(f"tree {tree} out of range")
        if not 0 <= index < self.pes_in_layer(layer):
            raise ConfigError(
                f"PE index {index} out of range for layer {layer}"
            )
        offset = tree * self.pes_per_tree
        for l in range(1, layer):
            offset += self.pes_in_layer(l)
        return offset + index

    def pe_position(self, pe: int) -> tuple[int, int, int]:
        """Inverse of :meth:`pe_id`: returns (tree, layer, index)."""
        if not 0 <= pe < self.num_pes:
            raise ConfigError(f"PE id {pe} out of range")
        tree, local = divmod(pe, self.pes_per_tree)
        layer = 1
        while local >= self.pes_in_layer(layer):
            local -= self.pes_in_layer(layer)
            layer += 1
        return tree, layer, local

    def pe_layer(self, pe: int) -> int:
        """1-based layer of a global PE id."""
        return self.pe_position(pe)[1]

    def pe_operand_sources(
        self, pe: int
    ) -> tuple[tuple[bool, int], tuple[bool, int]]:
        """Where a PE's two operands come from.

        Returns ``((from_port, id), (from_port, id))``: ``from_port`` is
        True when the operand is a global input port (layer-1 PEs),
        False when it is another PE's output.
        """
        tree, layer, index = self.pe_position(pe)
        if layer == 1:
            base = tree * self.tree_inputs
            return (True, base + 2 * index), (True, base + 2 * index + 1)
        left = self.pe_id(tree, layer - 1, 2 * index)
        right = self.pe_id(tree, layer - 1, 2 * index + 1)
        return (False, left), (False, right)

    def input_port(self, tree: int, port: int) -> int:
        """Global read-port id of local ``port`` in ``tree``."""
        if not 0 <= tree < self.num_trees:
            raise ConfigError(f"tree {tree} out of range")
        if not 0 <= port < self.tree_inputs:
            raise ConfigError(f"port {port} out of range")
        return tree * self.tree_inputs + port

    def port_position(self, global_port: int) -> tuple[int, int]:
        """Inverse of :meth:`input_port`."""
        if not 0 <= global_port < self.banks:
            raise ConfigError(f"port {global_port} out of range")
        return divmod(global_port, self.tree_inputs)

    def ports_under_pe(self, pe: int) -> list[int]:
        """Global input ports feeding the subtree rooted at ``pe``."""
        tree, layer, index = self.pe_position(pe)
        span = 1 << layer
        base = tree * self.tree_inputs + index * span
        return list(range(base, base + span))

    def __str__(self) -> str:
        return f"D{self.depth}-B{self.banks}-R{self.regs_per_bank}"


#: Minimum-EDP configuration found by the paper's DSE (§V-B).
MIN_EDP_CONFIG = ArchConfig(depth=3, banks=64, regs_per_bank=32)

#: Minimum-energy configuration (§V-B).
MIN_ENERGY_CONFIG = ArchConfig(depth=3, banks=16, regs_per_bank=64)

#: Minimum-latency configuration (§V-B).
MIN_LATENCY_CONFIG = ArchConfig(depth=3, banks=64, regs_per_bank=128)

#: The "large" configuration DPU-v2 (L) uses 256 registers per bank and
#: a 2MB data memory (§V-C2); one of its four cores.
LARGE_CORE_CONFIG = ArchConfig(
    depth=3, banks=64, regs_per_bank=256, data_mem_rows=8192
)


def dse_grid() -> list[ArchConfig]:
    """The 48-point design grid of §V-B.

    D in [1, 2, 3], B in [8, 16, 32, 64], R in [16, 32, 64, 128] —
    configurations where ``B < 2^D`` are skipped (T would be zero),
    matching the paper's constraint that B = T * 2^D.
    """
    grid: list[ArchConfig] = []
    for depth in (1, 2, 3):
        for banks in (8, 16, 32, 64):
            if banks < (1 << depth):
                continue
            for regs in (16, 32, 64, 128):
                grid.append(
                    ArchConfig(depth=depth, banks=banks, regs_per_bank=regs)
                )
    return grid
