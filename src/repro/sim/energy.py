"""Parametric energy model, calibrated to Table II of the paper.

The paper reports a gate-level power breakdown of the min-EDP design
(D=3, B=64, R=32) at 300MHz in a 28nm node (Table II, 108.9mW total).
We reproduce the *relative* energy landscape across the (D, B, R) grid
by combining:

* per-event energies anchored so that the min-EDP configuration,
  running at the paper's reported activity, dissipates Table II's
  per-component power, and
* standard CMOS scaling laws for how each component's event energy
  grows with the design parameters (documented per constant below).

Anchor activity (events per cycle at the min-EDP point, taken from the
paper's throughput — 4.2 GOPS at 300MHz = 14 ops/cycle — and the
instruction mix of fig. 13): 14 arithmetic PE firings, 18 register-bank
accesses, 16 crossbar word transfers, one IL-bit instruction fetch, and
0.06 data-memory row accesses per cycle.

This is a substitution for the authors' Synopsys synthesis flow (see
DESIGN.md); absolute joules are approximate but the DSE trends —
deeper trees help energy *and* latency, bank count trades latency
against power, register count saturates — are structural.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch import ArchConfig, Interconnect, instruction_widths
from .functional import ActivityCounters

# ---------------------------------------------------------------------------
# Anchor: Table II at (D=3, B=64, R=32), 300MHz. Power in mW; energy
# per cycle = P / f = mW / 300MHz * 1e9 = pJ * (10/3).
# ---------------------------------------------------------------------------
_ANCHOR_D, _ANCHOR_B, _ANCHOR_R = 3, 64, 32
_ANCHOR_PES = 56
_ANCHOR_IL = 1132  # exec width of the anchor design under our encoding

_PJ_PER_CYCLE_PER_MW = 1e9 / 300e6  # = 3.333 pJ per cycle per mW

# Anchor activity rates (events/cycle), from the paper's throughput and
# instruction mix as described in the module docstring.
_RATE_PE_OPS = 14.0
_RATE_BANK_ACCESS = 18.0
_RATE_XBAR = 16.0
_RATE_DMEM = 0.06

# Table II rows (mW).
_P_PES = 11.9
_P_PIPE_REGS = 8.0
_P_IN_XBAR = 10.0
_P_OUT_ICN = 0.5
_P_BANKS = 24.0
_P_WR_ADDR = 7.8
_P_INSTR_FETCH = 7.0
_P_DECODE = 2.6
_P_CTRL_PIPE = 2.7
_P_IMEM = 27.7
_P_DMEM = 6.7

# Derived per-event/per-cycle energies at the anchor (pJ).
_E_PE_OP = _P_PES * _PJ_PER_CYCLE_PER_MW / _RATE_PE_OPS
_E_PIPE_REG_PER_PE_CYCLE = _P_PIPE_REGS * _PJ_PER_CYCLE_PER_MW / _ANCHOR_PES
_E_XBAR_WORD = _P_IN_XBAR * _PJ_PER_CYCLE_PER_MW / _RATE_XBAR
_E_OUT_WRITE = _P_OUT_ICN * _PJ_PER_CYCLE_PER_MW / (_RATE_BANK_ACCESS / 2)
# Banks: 80% dynamic (per access), 20% idle (per register per cycle).
_E_BANK_ACCESS = 0.8 * _P_BANKS * _PJ_PER_CYCLE_PER_MW / _RATE_BANK_ACCESS
_E_BANK_IDLE_PER_REG = (
    0.2 * _P_BANKS * _PJ_PER_CYCLE_PER_MW / (_ANCHOR_B * _ANCHOR_R)
)
_E_WR_ADDR_PER_BANK_CYCLE = _P_WR_ADDR * _PJ_PER_CYCLE_PER_MW / _ANCHOR_B
_E_FETCH_PER_BIT = _P_INSTR_FETCH * _PJ_PER_CYCLE_PER_MW / _ANCHOR_IL
_E_DECODE_PER_BIT = _P_DECODE * _PJ_PER_CYCLE_PER_MW / _ANCHOR_IL
_E_CTRL_PER_CYCLE = _P_CTRL_PIPE * _PJ_PER_CYCLE_PER_MW
_E_IMEM_PER_BIT = _P_IMEM * _PJ_PER_CYCLE_PER_MW / _ANCHOR_IL
# Data memory: half idle (SRAM periphery clocks every cycle), half per
# row access, at the anchor's low access rate.
_E_DMEM_IDLE_PER_CYCLE = 0.5 * _P_DMEM * _PJ_PER_CYCLE_PER_MW
_E_DMEM_PER_ROW = 0.5 * _P_DMEM * _PJ_PER_CYCLE_PER_MW / _RATE_DMEM


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component energy (pJ) for one workload execution."""

    pes: float
    pipeline_regs: float
    input_interconnect: float
    output_interconnect: float
    banks: float
    write_addr_gen: float
    instr_fetch: float
    decode: float
    control_pipeline: float
    instr_memory: float
    data_memory: float

    @property
    def total_pj(self) -> float:
        return (
            self.pes
            + self.pipeline_regs
            + self.input_interconnect
            + self.output_interconnect
            + self.banks
            + self.write_addr_gen
            + self.instr_fetch
            + self.decode
            + self.control_pipeline
            + self.instr_memory
            + self.data_memory
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "PEs": self.pes,
            "Pipelining registers (datapath)": self.pipeline_regs,
            "Input interconnect": self.input_interconnect,
            "Output interconnect": self.output_interconnect,
            "Register banks": self.banks,
            "Wr addr generator": self.write_addr_gen,
            "Instr fetch": self.instr_fetch,
            "Decode": self.decode,
            "Pipelining registers (control)": self.control_pipeline,
            "Instruction memory": self.instr_memory,
            "Data memory": self.data_memory,
        }


@dataclass(frozen=True)
class EnergyReport:
    """Energy summary of one workload on one configuration."""

    breakdown: EnergyBreakdown
    operations: int
    cycles: int
    frequency_hz: float

    @property
    def total_pj(self) -> float:
        return self.breakdown.total_pj

    @property
    def energy_per_op_pj(self) -> float:
        """fig. 11(b) metric."""
        return self.total_pj / self.operations if self.operations else 0.0

    @property
    def power_w(self) -> float:
        seconds = self.cycles / self.frequency_hz
        return self.total_pj * 1e-12 / seconds if seconds else 0.0

    @property
    def latency_per_op_ns(self) -> float:
        if not self.operations:
            return 0.0
        return self.cycles / self.frequency_hz * 1e9 / self.operations

    @property
    def edp_per_op(self) -> float:
        """Energy-delay product per op, pJ x ns (fig. 11(c) metric)."""
        return self.energy_per_op_pj * self.latency_per_op_ns


def _xbar_scale(banks: int) -> float:
    """Crossbar word-energy growth: wire length ~ sqrt(ports^2) => ~B."""
    return banks / _ANCHOR_B

def _bank_scale(regs: int) -> float:
    """SRAM/regfile access energy ~ sqrt(words) (bitline growth)."""
    return math.sqrt(regs / _ANCHOR_R)


def _out_icn_scale(depth: int) -> float:
    """Output mux energy grows with the per-bank option count (D+1)."""
    return (depth + 1) / (_ANCHOR_D + 1)


def energy_of_run(
    config: ArchConfig,
    counters: ActivityCounters,
    operations: int,
    interconnect: Interconnect | None = None,
) -> EnergyReport:
    """Energy for one simulated execution.

    Args:
        counters: Activity totals from the architectural simulator.
        operations: Arithmetic DAG node count (the GOPS denominator).
    """
    inter = interconnect or Interconnect(config)
    il = instruction_widths(config, inter).il
    cycles = counters.cycles

    pes = _E_PE_OP * (counters.pe_ops + 0.3 * counters.pe_passes)
    pipe = _E_PIPE_REG_PER_PE_CYCLE * config.num_pes * cycles
    in_xbar = _E_XBAR_WORD * _xbar_scale(config.banks) * (
        counters.crossbar_transfers
    )
    out_icn = _E_OUT_WRITE * _out_icn_scale(config.depth) * (
        counters.bank_writes
    )
    accesses = counters.bank_reads + counters.bank_writes
    banks = (
        _E_BANK_ACCESS * _bank_scale(config.regs_per_bank) * accesses
        + _E_BANK_IDLE_PER_REG * config.total_registers * cycles
    )
    wr_addr = (
        _E_WR_ADDR_PER_BANK_CYCLE
        * _bank_scale(config.regs_per_bank)
        * config.banks
        * cycles
    )
    fetched_bits = counters.instr_bits_fetched
    fetch = _E_FETCH_PER_BIT * fetched_bits
    decode = _E_DECODE_PER_BIT * fetched_bits
    ctrl = _E_CTRL_PER_CYCLE * (config.depth / _ANCHOR_D) * (
        il / _ANCHOR_IL
    ) * cycles
    imem = _E_IMEM_PER_BIT * fetched_bits
    dmem_rows = counters.dmem_reads + counters.dmem_writes
    dmem = (
        _E_DMEM_IDLE_PER_CYCLE * (config.banks / _ANCHOR_B) * cycles
        + _E_DMEM_PER_ROW * (config.banks / _ANCHOR_B) * dmem_rows
    )

    breakdown = EnergyBreakdown(
        pes=pes,
        pipeline_regs=pipe,
        input_interconnect=in_xbar,
        output_interconnect=out_icn,
        banks=banks,
        write_addr_gen=wr_addr,
        instr_fetch=fetch,
        decode=decode,
        control_pipeline=ctrl,
        instr_memory=imem,
        data_memory=dmem,
    )
    return EnergyReport(
        breakdown=breakdown,
        operations=operations,
        cycles=cycles,
        frequency_hz=config.frequency_hz,
    )


def energy_of_batch(
    config: ArchConfig,
    counters: ActivityCounters,
    operations: int,
    batch: int,
    interconnect: Interconnect | None = None,
) -> EnergyReport:
    """Energy for a batched execution of ``batch`` rows.

    Args:
        counters: Single-run activity totals (e.g. from an
            :class:`~repro.sim.plan.ExecutionPlan`); they are scaled
            by the batch size here, which is exact because execution
            is fully static.
        operations: Arithmetic DAG node count of **one** row.
        batch: Number of rows in the batch.
    """
    return energy_of_run(
        config,
        counters.scaled(batch),
        operations * batch,
        interconnect,
    )


def paper_power_breakdown_mw() -> dict[str, float]:
    """Table II's published power rows (mW), for report comparisons."""
    return {
        "PEs": _P_PES,
        "Pipelining registers (datapath)": _P_PIPE_REGS,
        "Input interconnect": _P_IN_XBAR,
        "Output interconnect": _P_OUT_ICN,
        "Register banks": _P_BANKS,
        "Wr addr generator": _P_WR_ADDR,
        "Instr fetch": _P_INSTR_FETCH,
        "Decode": _P_DECODE,
        "Pipelining registers (control)": _P_CTRL_PIPE,
        "Instruction memory": _P_IMEM,
        "Data memory": _P_DMEM,
    }
