"""Machine-readable benchmark trajectory files (``BENCH_*.json``).

Every benchmark run appends one *run entry* to a trajectory file, so
the repo accumulates an ordered perf history that future PRs (and the
CI perf-smoke gate) can diff against instead of eyeballing text
reports.  The format is deliberately tiny and stable:

.. code-block:: json

    {
      "schema": "repro-bench-v1",
      "bench": "compile_scaling",
      "runs": [
        {
          "timestamp": "2026-07-27T12:00:00+00:00",
          "label": "post-array-kernels",
          "host": {"python": "3.11.8", "platform": "...", "cpus": 2},
          "git": "433aedb",
          "records": [
            {"workload": "tretail", "nodes": 433,
             "mode": "monolithic", "seconds": 0.05,
             "passes": {"decompose": 0.01, "map": 0.02}}
          ]
        }
      ]
    }

``records`` entries are benchmark-defined; the envelope (schema,
bench name, per-run metadata) is owned by this module.  Use
:func:`append_run` from benchmark scripts and :func:`load_trajectory`
/ :func:`latest_records` from consumers (CI gates, plots).

CLI::

    python tools/bench_to_json.py show BENCH_compile.json
    python tools/bench_to_json.py append BENCH_compile.json \
        --bench compile_scaling --label manual < records.json
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import platform
import subprocess
import sys
import tempfile

SCHEMA = "repro-bench-v1"


def _git_revision(cwd: str | None = None) -> str | None:
    """Best-effort short commit hash; ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def host_info() -> dict:
    """Per-run environment metadata embedded in every run entry."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "hostname": platform.node(),
        "cpus": os.cpu_count() or 1,
    }


def load_trajectory(path: str, bench: str | None = None) -> dict:
    """Load (or initialize) a trajectory file.

    Args:
        path: JSON file location; a missing or empty file yields a
            fresh trajectory.
        bench: Expected benchmark name; mismatches raise ``ValueError``
            so two benchmarks never interleave in one file.
    """
    doc: dict | None = None
    if os.path.exists(path) and os.path.getsize(path) > 0:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: not a {SCHEMA} trajectory file"
            )
        if bench and doc.get("bench") not in (None, bench):
            raise ValueError(
                f"{path}: holds bench {doc.get('bench')!r}, not {bench!r}"
            )
    if doc is None:
        doc = {"schema": SCHEMA, "bench": bench, "runs": []}
    doc.setdefault("runs", [])
    return doc


def append_run(
    path: str,
    bench: str,
    records: list[dict],
    label: str | None = None,
    extra: dict | None = None,
) -> dict:
    """Append one run entry to ``path`` (atomic rewrite) and return it."""
    doc = load_trajectory(path, bench=bench)
    doc["bench"] = doc.get("bench") or bench
    run = {
        "timestamp": _dt.datetime.now(_dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "label": label,
        "host": host_info(),
        "git": _git_revision(os.path.dirname(os.path.abspath(path)) or "."),
        "records": records,
    }
    if extra:
        run.update(extra)
    doc["runs"].append(run)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return run


def latest_records(path: str, bench: str | None = None) -> list[dict]:
    """Records of the most recent run (empty list for a fresh file)."""
    doc = load_trajectory(path, bench=bench)
    if not doc["runs"]:
        return []
    return doc["runs"][-1].get("records", [])


def _cmd_show(args: argparse.Namespace) -> int:
    doc = load_trajectory(args.path)
    runs = doc["runs"]
    print(f"{args.path}: bench={doc.get('bench')!r}, {len(runs)} run(s)")
    for i, run in enumerate(runs):
        recs = run.get("records", [])
        total = sum(
            r["seconds"] for r in recs if isinstance(r.get("seconds"), (int, float))
        )
        print(
            f"  [{i}] {run.get('timestamp')} label={run.get('label')!r} "
            f"git={run.get('git')} records={len(recs)} "
            f"total={total:.3f}s"
        )
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    records = json.load(sys.stdin)
    if not isinstance(records, list):
        print("stdin must hold a JSON list of records", file=sys.stderr)
        return 2
    run = append_run(args.path, args.bench, records, label=args.label)
    print(f"appended run with {len(run['records'])} records to {args.path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("show", help="summarize a trajectory file")
    p.add_argument("path")
    p.set_defaults(func=_cmd_show)
    p = sub.add_parser("append", help="append records (JSON list on stdin)")
    p.add_argument("path")
    p.add_argument("--bench", required=True)
    p.add_argument("--label", default=None)
    p.set_defaults(func=_cmd_append)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
