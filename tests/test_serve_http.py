"""HTTP front-end protocol units: header semantics + body validation.

The socket-level end-to-end paths (keep-alive reuse, served parity
over the wire) live in ``test_serve_service.py``; this file pins the
pure protocol helpers, in particular the RFC 9110 ``Connection``
header rule — a case-insensitive, comma-separated token *list*, not a
string equality — that both the server and the pooled client apply.
"""

from __future__ import annotations

import pytest

from repro.serve.http import (
    _BadRequest,
    connection_closes,
    parse_infer_body,
)


class TestConnectionHeader:
    @pytest.mark.parametrize("value", [
        "close",
        "Close",
        "CLOSE",
        " close ",
        "keep-alive, close",
        "Keep-Alive, Close",
        "KEEP-ALIVE,CLOSE",
        "close, TE",
    ])
    def test_close_tokens_close(self, value):
        assert connection_closes(value) is True

    @pytest.mark.parametrize("value", [
        "keep-alive",
        "Keep-Alive",
        "KEEP-ALIVE",
        "keep-alive, TE",
        "upgrade",
        "",
        # A token merely *containing* "close" is not the close token.
        "not-close",
        "closed",
    ])
    def test_other_tokens_persist(self, value):
        assert connection_closes(value) is False

    def test_absent_header_uses_the_default(self):
        # HTTP/1.1: persistent unless told otherwise.
        assert connection_closes(None) is False
        assert connection_closes(None, default="close") is True


class TestParseInferBody:
    def test_flat_row(self):
        got = parse_infer_body(
            b'{"program": "p", "inputs": [1.0, 2, 3.5]}'
        )
        assert got == {
            "program": "p",
            "inputs": [1.0, 2, 3.5],
            "tenant": "default",
            "deadline_s": None,
            "max_wait_s": None,
            "request_id": None,
        }

    def test_multi_row_with_knobs(self):
        got = parse_infer_body(
            b'{"program": "p", "inputs": [[1, 2], [3, 4]],'
            b' "tenant": "t9", "deadline_ms": 250, "max_wait_ms": 1.5}'
        )
        assert got["inputs"] == [[1, 2], [3, 4]]
        assert got["tenant"] == "t9"
        assert got["deadline_s"] == 0.25
        assert got["max_wait_s"] == 0.0015

    @pytest.mark.parametrize("body", [
        b"not json",
        b"[]",
        b'{"inputs": [1]}',
        b'{"program": "p"}',
        b'{"program": 3, "inputs": [1]}',
        b'{"program": "p", "inputs": [1], "tenant": 7}',
        b'{"program": "p", "inputs": "nope"}',
        b'{"program": "p", "inputs": [true]}',
        b'{"program": "p", "inputs": [[1], "x"]}',
        b'{"program": "p", "inputs": [1], "deadline_ms": "soon"}',
        b'{"program": "p", "inputs": [1], "max_wait_ms": true}',
    ])
    def test_malformed_bodies_rejected(self, body):
        with pytest.raises(_BadRequest):
            parse_infer_body(body)
